(* Log-bucketed histogram for latencies, byte counts and other
   non-negative measurements.

   Two stores run in parallel:
   - power-of-two buckets (exact counts, fixed memory) for shape and
     for overflow-proof accounting;
   - a bounded reservoir of raw samples from which percentiles are
     extracted with the existing [Hf_util.Stats] rank code (exact while
     the reservoir has room; once it fills, percentiles describe the
     first [sample_limit] observations and [dropped_samples] says how
     many came after).

   NaN is rejected up front, mirroring [Hf_util.Stats]: a NaN sample
   would poison every rank statistic. *)

(* Bucket layout: bucket 0 holds v < 2^e_min (including zero and
   negatives); bucket i (1 <= i < n_buckets - 1) holds
   2^(e_min + i - 1) <= v < 2^(e_min + i); the last bucket holds
   everything above.  e_min = -20 puts the smallest bucket near a
   microsecond, the top one past 4e12 — wide enough for both seconds
   and byte counts. *)
let e_min = -20

let n_buckets = 64

let bucket_index v =
  if Float.is_nan v then invalid_arg "Histogram.bucket_index: NaN";
  if v < Float.ldexp 1.0 e_min then 0
  else begin
    (* frexp v = (m, e) with v = m * 2^e, 0.5 <= m < 1, so
       2^(e-1) <= v < 2^e and the bucket's low bound exponent is e-1. *)
    let _, e = Float.frexp v in
    min (n_buckets - 1) (e - e_min)
  end

let bucket_bounds i =
  if i < 0 || i >= n_buckets then invalid_arg "Histogram.bucket_bounds: out of range";
  if i = 0 then (Float.neg_infinity, Float.ldexp 1.0 e_min)
  else
    ( Float.ldexp 1.0 (e_min + i - 1),
      if i = n_buckets - 1 then Float.infinity else Float.ldexp 1.0 (e_min + i) )

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
  mutable samples : float array; (* reservoir; first [n_samples] slots live *)
  mutable n_samples : int;
  sample_limit : int;
  mutable dropped_samples : int; (* observations past the reservoir *)
}

let default_sample_limit = 4096

let create ?(sample_limit = default_sample_limit) () =
  if sample_limit < 1 then invalid_arg "Histogram.create: sample_limit must be positive";
  {
    count = 0;
    sum = 0.0;
    vmin = Float.infinity;
    vmax = Float.neg_infinity;
    buckets = Array.make n_buckets 0;
    samples = [||];
    n_samples = 0;
    sample_limit;
    dropped_samples = 0;
  }

(* Rebuild a histogram from its exact components (count/sum/min/max and
   bucket counts) without any reservoir samples — the form a histogram
   takes after crossing the wire in a [Stats_report], or after a
   [diff].  Percentiles are unavailable ([summary] returns [None]);
   count, sum, min, max and bucket shape are exact. *)
let of_shape ?(sample_limit = default_sample_limit) ~count ~sum ~vmin ~vmax ~buckets () =
  if count < 0 then invalid_arg "Histogram.of_shape: negative count";
  let t = create ~sample_limit () in
  List.iter
    (fun (i, n) ->
      if i < 0 || i >= n_buckets then invalid_arg "Histogram.of_shape: bucket out of range";
      if n < 0 then invalid_arg "Histogram.of_shape: negative bucket count";
      t.buckets.(i) <- t.buckets.(i) + n)
    buckets;
  t.count <- count;
  t.sum <- sum;
  t.vmin <- vmin;
  t.vmax <- vmax;
  t

let vmin t = t.vmin

let vmax t = t.vmax

let push_sample t v =
  if t.n_samples < t.sample_limit then begin
    if t.n_samples >= Array.length t.samples then begin
      let capacity = max 16 (min t.sample_limit (2 * Array.length t.samples)) in
      let grown = Array.make capacity 0.0 in
      Array.blit t.samples 0 grown 0 t.n_samples;
      t.samples <- grown
    end;
    t.samples.(t.n_samples) <- v;
    t.n_samples <- t.n_samples + 1
  end
  else t.dropped_samples <- t.dropped_samples + 1

let observe t v =
  if Float.is_nan v then invalid_arg "Histogram.observe: NaN sample";
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  push_sample t v

let count t = t.count

let sum t = t.sum

let dropped_samples t = t.dropped_samples

let buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then out := (i, t.buckets.(i)) :: !out
  done;
  !out

let copy t =
  {
    t with
    buckets = Array.copy t.buckets;
    samples = Array.sub t.samples 0 t.n_samples;
  }

let summary t =
  if t.count = 0 || t.n_samples = 0 then None
  else begin
    let s = Hf_util.Stats.summarize (Array.sub t.samples 0 t.n_samples) in
    (* count/mean/min/max are tracked exactly even past the reservoir;
       only the rank statistics are reservoir-bounded. *)
    Some
      {
        s with
        Hf_util.Stats.count = t.count;
        mean = t.sum /. float_of_int t.count;
        min = t.vmin;
        max = t.vmax;
      }
  end

let merge a b =
  let t = create ~sample_limit:(max a.sample_limit b.sample_limit) () in
  let absorb src =
    Array.iteri (fun i n -> t.buckets.(i) <- t.buckets.(i) + n) src.buckets;
    t.count <- t.count + src.count;
    t.sum <- t.sum +. src.sum;
    if src.vmin < t.vmin then t.vmin <- src.vmin;
    if src.vmax > t.vmax then t.vmax <- src.vmax;
    for i = 0 to src.n_samples - 1 do
      push_sample t src.samples.(i)
    done;
    t.dropped_samples <- t.dropped_samples + src.dropped_samples
  in
  absorb a;
  absorb b;
  t

(* [newer] minus [older], for rate computation over two snapshots of the
   same histogram: bucket counts, count and sum subtract (clamped at
   zero, so a reset counterpart yields the newer values rather than
   negatives); min/max are not diffable and keep [newer]'s.  The result
   carries no reservoir — percentiles of a difference are undefined. *)
let diff ~older ~newer =
  let t = create ~sample_limit:newer.sample_limit () in
  Array.iteri (fun i n -> t.buckets.(i) <- max 0 (n - older.buckets.(i))) newer.buckets;
  t.count <- max 0 (newer.count - older.count);
  t.sum <- (if newer.count >= older.count then newer.sum -. older.sum else newer.sum);
  t.vmin <- newer.vmin;
  t.vmax <- newer.vmax;
  t

let pp ppf t =
  match summary t with
  | None ->
    if t.count = 0 then Fmt.pf ppf "empty"
    else
      Fmt.pf ppf "n=%d mean=%.3f min=%.3f max=%.3f (no percentile samples)" t.count
        (t.sum /. float_of_int t.count)
        t.vmin t.vmax
  | Some s ->
    Fmt.pf ppf "%a%s" Hf_util.Stats.pp_summary s
      (if t.dropped_samples > 0 then
         Printf.sprintf " (percentiles over first %d samples; %d beyond)" t.n_samples
           t.dropped_samples
       else "")

let json_buckets t =
  Json.List
    (List.map
       (fun (i, n) ->
         let lo, hi = bucket_bounds i in
         Json.List [ Json.Float lo; Json.Float hi; Json.Int n ])
       (buckets t))

let to_json t =
  match summary t with
  | None ->
    if t.count = 0 then Json.Obj [ ("count", Json.Int 0) ]
    else
      Json.Obj
        [
          ("count", Json.Int t.count);
          ("sum", Json.Float t.sum);
          ("mean", Json.Float (t.sum /. float_of_int t.count));
          ("min", Json.Float t.vmin);
          ("max", Json.Float t.vmax);
          ("dropped_samples", Json.Int t.dropped_samples);
          ("buckets", json_buckets t);
        ]
  | Some s ->
    Json.Obj
      [
        ("count", Json.Int t.count);
        ("sum", Json.Float t.sum);
        ("mean", Json.Float s.Hf_util.Stats.mean);
        ("min", Json.Float s.Hf_util.Stats.min);
        ("max", Json.Float s.Hf_util.Stats.max);
        ("p50", Json.Float s.Hf_util.Stats.p50);
        ("p90", Json.Float s.Hf_util.Stats.p90);
        ("p99", Json.Float s.Hf_util.Stats.p99);
        ("dropped_samples", Json.Int t.dropped_samples);
        ("buckets", json_buckets t);
      ]
