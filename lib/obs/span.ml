(* One unit of attributed work in a query's causal tree.

   A span records which query did what, on which site, in which phase,
   and — the part none of the ad-hoc counters could answer — which span
   *caused* it: a cross-site work message carries the shipping span's id
   so the remote evaluation hangs off the originating site's span. *)

type phase =
  | Query (* root span: one per issued query, at the originator *)
  | Eval (* engine work on a site's per-query context *)
  | Ship (* a message travelling between sites *)
  | Flush (* the batcher shipping buffered work *)
  | Credit (* termination-detector traffic *)
  | Drain (* a context's working set ran dry *)
  | Recv (* arrival of a message at an existing context *)
  | Retransmit (* the reliability layer resending an unacknowledged message *)
  | Cache (* remote-answer cache traffic: validate round trips, hits, prunes *)
  | Wait (* time a task spent queued before a scheduler ran it *)
  | Scatter (* single-round scatter-gather traffic: scatter broadcast, gather merge *)

let phase_name = function
  | Query -> "query"
  | Eval -> "eval"
  | Ship -> "ship"
  | Flush -> "flush"
  | Credit -> "credit"
  | Drain -> "drain"
  | Recv -> "recv"
  | Retransmit -> "retransmit"
  | Cache -> "cache"
  | Wait -> "wait"
  | Scatter -> "scatter"

let all_phases =
  [ Query; Eval; Ship; Flush; Credit; Drain; Recv; Retransmit; Cache; Wait; Scatter ]

type t = {
  id : int; (* unique within a tracer; 0 is reserved for "no span" *)
  parent : int; (* 0 = a root *)
  query : string; (* rendered query id, e.g. "q0@0" *)
  site : int;
  phase : phase;
  name : string;
  start : float;
  mutable finish : float; (* = start until finished *)
  mutable detail : string;
}

let duration span = span.finish -. span.start

let pp ppf span =
  Fmt.pf ppf "#%-4d %8.4f +%.4f site%-2d %-6s %-12s %s%s%s" span.id span.start (duration span)
    span.site (phase_name span.phase) span.name span.query
    (if span.parent = 0 then "" else Printf.sprintf " <- #%d" span.parent)
    (if span.detail = "" then "" else " | " ^ span.detail)
