(** EXPLAIN ANALYZE for a distributed query.

    Folds one query's causal spans into a per-site, per-phase time
    breakdown plus the ship-round depth (the longest chain of
    cross-site hops — the paper's "rounds" cost made observable), and
    carries the engine's exact per-query counters alongside as
    {!scalar}s.  Spans answer "where did the time go"; scalars answer
    "what did it cost" — the differential tests pin the two views
    together where they must agree. *)

type scalar = Int of int | Float of float

type site_row = {
  site : int;
  phases : (Span.phase * float * int) list;
      (** (phase, total seconds, span count) in declaration order;
          phases with no spans at this site are omitted. *)
  busy_s : float;  (** [Eval] total: execution time. *)
  wait_s : float;  (** [Wait] total: time queued before running. *)
  ships : int;  (** [Ship] spans originating at this site. *)
}

type t = {
  query : string;
  total_s : float;
      (** the root [Query] span's duration when present, else the
          observed extent of the query's spans. *)
  rounds : int;  (** deepest [Ship] nesting on any causal chain. *)
  span_count : int;
  dropped_spans : int;
      (** tracer drops at capture time: non-zero means the breakdown
          may be missing work. *)
  sites : site_row list;  (** ascending site id. *)
  scalars : (string * scalar) list;
      (** engine-attributed per-query totals (messages, bytes, cache
          hits, ...), passed through verbatim. *)
}

val of_spans :
  query:string -> ?scalars:(string * scalar) list -> ?dropped:int -> Span.t list -> t
(** Build a profile from a tracer's spans.  Spans whose [query] field
    differs are ignored, so the whole tracer dump can be passed. *)

val scalar_int : t -> string -> int option
val scalar_float : t -> string -> float option

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
