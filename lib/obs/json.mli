(** Minimal JSON tree and serializer (metrics dumps, trace files). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN and infinities serialize as [null]. *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
val pp : Format.formatter -> t -> unit
