(** Causal spans: attributed units of work in a query's trace tree. *)

type phase =
  | Query  (** root span: one per issued query, at the originator. *)
  | Eval  (** engine work on a site's per-query context. *)
  | Ship  (** a message travelling between sites. *)
  | Flush  (** the batcher shipping buffered work. *)
  | Credit  (** termination-detector traffic. *)
  | Drain  (** a context's working set ran dry. *)
  | Recv  (** arrival of a message at an existing context. *)
  | Retransmit  (** the reliability layer resending an unacknowledged message. *)
  | Cache
      (** remote-answer cache traffic: validate round trips, hits,
          prunes. *)
  | Wait  (** time a task spent queued before a scheduler ran it. *)
  | Scatter
      (** single-round scatter-gather traffic: the scatter broadcast and
          the gather merge at the originator. *)

val phase_name : phase -> string

val all_phases : phase list
(** Every phase, in declaration order (profile tables iterate this). *)

type t = {
  id : int;  (** unique within a tracer; 0 is reserved for "no span". *)
  parent : int;  (** causing span's id; 0 = a root. *)
  query : string;  (** rendered query id, e.g. ["q0@0"]. *)
  site : int;
  phase : phase;
  name : string;
  start : float;
  mutable finish : float;  (** equals [start] until finished. *)
  mutable detail : string;
}

val duration : t -> float
val pp : Format.formatter -> t -> unit
