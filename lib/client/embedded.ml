(* The embedded-language client (paper, Section 2): applications name
   object sets, pose queries whose results bind new named sets, and pull
   tuple values into application variables with the -> operator.

     let server = Embedded.create ~n_sites:3 () in
     ...
     Embedded.define_set server "S" [oid_a; oid_b];
     let r = Embedded.query server "S [ (Pointer, \"Ref\", ?X) ^^X ]* \
                                    (Keyword, \"Distributed\", ?) -> T" in
     (* the result set is now also available as "T" *)

   Queries run on the weighted-termination cluster (the paper's
   configuration). *)

module C = Hf_server.Instances.Weighted

exception Invalid_query of string

type t = {
  cluster : C.t;
  sets : (string, Hf_data.Oid.t list) Hashtbl.t;
  mutable default_origin : int;
}

let create ?config ?trace ?tracer ~n_sites () =
  {
    cluster = C.create ?config ?trace ?tracer ~n_sites ();
    sets = Hashtbl.create 8;
    default_origin = 0;
  }

let cluster t = t.cluster

let store t site = C.store t.cluster site

let set_default_origin t origin = t.default_origin <- origin

let define_set t name oids = Hashtbl.replace t.sets name oids

let find_set t name = Hashtbl.find_opt t.sets name

let set_exn t name =
  match find_set t name with
  | Some oids -> oids
  | None -> raise (Invalid_query (Printf.sprintf "unknown set %S" name))

type result = {
  outcome : Hf_server.Cluster.outcome;
  target : string option;
  (* convenience projections *)
  oids : Hf_data.Oid.t list;
  values : (string * Hf_data.Value.t list) list;
  handle : C.handle; (* for post-hoc profiling *)
}

let check_body body =
  match Hf_query.Validate.errors body with
  | [] -> ()
  | issues ->
    let messages = List.map (fun i -> i.Hf_query.Validate.message) issues in
    raise (Invalid_query (String.concat "; " messages))

let run_parsed t ~origin (q : Hf_query.Parser.query) =
  check_body q.body;
  let initial = match q.source with None -> [] | Some name -> set_exn t name in
  let program = Hf_query.Compile.compile q.body in
  let handle = C.submit t.cluster ~origin program initial in
  C.await_quiescence t.cluster;
  let outcome = C.outcome t.cluster handle in
  (match q.target with
   | Some name -> Hashtbl.replace t.sets name outcome.Hf_server.Cluster.results
   | None -> ());
  {
    outcome;
    target = q.target;
    oids = outcome.Hf_server.Cluster.results;
    values = outcome.Hf_server.Cluster.bindings;
    handle;
  }

let query ?origin t text =
  let origin = Option.value origin ~default:t.default_origin in
  match Hf_query.Parser.parse_query text with
  | q -> run_parsed t ~origin q
  | exception Hf_query.Parser.Parse_error { message; pos } ->
    raise (Invalid_query (Printf.sprintf "parse error at %d:%d: %s" pos.line pos.col message))

let query_ast ?origin ?source ?target t body =
  let origin = Option.value origin ~default:t.default_origin in
  run_parsed t ~origin { Hf_query.Parser.source; body; target }

let profile t (r : result) = C.profile t.cluster r.handle

(* Create an object on a site and return its oid — the write half of the
   application interface. *)
let create_object t ~site tuples =
  Hf_data.Hobject.oid (Hf_data.Store.create_object (store t site) tuples)

let create_set_object t ~site ?key members =
  let obj = Hf_data.Store.create_set (store t site) ?key members in
  Hf_data.Hobject.oid obj

let sets t = Hashtbl.fold (fun name oids acc -> (name, oids) :: acc) t.sets []

(* Set algebra over named sets.  Result sets are ordinary named sets, so
   applications can combine query results before refining them further
   (paper §2: sets are the currency of the interface). *)

let as_set oids = Hf_data.Oid.Set.of_list oids

let define_combined t name combine a b =
  let result =
    Hf_data.Oid.Set.elements (combine (as_set (set_exn t a)) (as_set (set_exn t b)))
  in
  Hashtbl.replace t.sets name result;
  result

let define_union t name a b = define_combined t name Hf_data.Oid.Set.union a b

let define_inter t name a b = define_combined t name Hf_data.Oid.Set.inter a b

let define_diff t name a b = define_combined t name Hf_data.Oid.Set.diff a b

(* Materialize a named set as a HyperFile object of pointer tuples (the
   paper's on-server set representation), so it can itself be stored,
   pointed at, and dereferenced. *)
let store_set t ~site name =
  create_set_object t ~site (set_exn t name)
