(** The embedded-language client (paper, Section 2).

    Applications name object sets, pose queries whose result sets bind
    new names, and pull tuple values into variables with the [->]
    operator.  Queries run on the weighted-termination cluster — the
    paper's configuration. *)

module C = Hf_server.Instances.Weighted

exception Invalid_query of string
(** Parse errors, validation errors, unknown set names. *)

type t

val create :
  ?config:Hf_server.Cluster.config ->
  ?trace:Hf_sim.Trace.t ->
  ?tracer:Hf_obs.Tracer.t ->
  n_sites:int ->
  unit ->
  t

val cluster : t -> C.t

val store : t -> int -> Hf_data.Store.t

val set_default_origin : t -> int -> unit
(** Site used when [?origin] is omitted (initially 0). *)

val define_set : t -> string -> Hf_data.Oid.t list -> unit

val find_set : t -> string -> Hf_data.Oid.t list option

val sets : t -> (string * Hf_data.Oid.t list) list

type result = {
  outcome : Hf_server.Cluster.outcome;
  target : string option;
  oids : Hf_data.Oid.t list;  (** result objects, arrival order. *)
  values : (string * Hf_data.Value.t list) list;
      (** values retrieved by [->], per target variable. *)
  handle : C.handle;
      (** the underlying cluster handle, kept so the query can be
          profiled after the fact (see {!profile}). *)
}

val query : ?origin:int -> t -> string -> result
(** Parse, validate, and run a query in concrete syntax.  A leading
    identifier names the starting set; a trailing ["-> T"] binds the
    result set to ["T"].  Raises [Invalid_query]. *)

val query_ast :
  ?origin:int -> ?source:string -> ?target:string -> t -> Hf_query.Ast.t -> result
(** Same, from a pre-built AST (e.g. via {!Hf_query.Builder}). *)

val profile : t -> result -> Hf_obs.Profile.t
(** EXPLAIN ANALYZE for a completed query (DESIGN.md §4i): per-site
    phase/rounds breakdown from the tracer's spans, with the engine's
    per-query metric totals pinned alongside as scalars.  Meaningful
    only when the server was created with a real [tracer]. *)

val create_object : t -> site:int -> Hf_data.Tuple.t list -> Hf_data.Oid.t

val create_set_object :
  t -> site:int -> ?key:string -> Hf_data.Oid.t list -> Hf_data.Oid.t
(** Materialize a set as an object of pointer tuples (the paper's set
    representation). *)

(** {1 Set algebra}

    Named sets are the currency of the interface (paper §2); these
    combine existing sets into new named sets.  All raise
    [Invalid_query] on unknown names. *)

val define_union : t -> string -> string -> string -> Hf_data.Oid.t list
(** [define_union t name a b] binds [name] to [a ∪ b] and returns it. *)

val define_inter : t -> string -> string -> string -> Hf_data.Oid.t list

val define_diff : t -> string -> string -> string -> Hf_data.Oid.t list
(** [a] minus [b]. *)

val store_set : t -> site:int -> string -> Hf_data.Oid.t
(** Materialize a named set as an object of pointer tuples on [site]. *)
