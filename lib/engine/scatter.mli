(** Scatter-gather evaluation: the engine half shared by the simulator
    and the TCP transport (doc/execution_modes.md).

    A scattered site evaluates its whole {e speculation domain} — seed
    roots at filter 0 plus every local object at every dereference
    landing index — each node with a fresh mark table, and ships home
    only the productive nodes.  The originator then {e stitches}: it
    replays the classic algorithm's reachability over the precomputed
    nodes, following spawn edges between site tables and reproducing
    the mark table's entry suppression with per-(site, object) covered
    index sets, so the stitched answer is byte-identical to a classic
    run with the same arrival order.  Chains whose dereference escapes
    the scattered site set fall back to classic shipping as ordinary
    work items.

    Only programs without finite iterators are eligible
    ({!Hf_query.Plan.eligible}): the iteration counters are then
    constant all-zero vectors, so a node is fully determined by its
    (object, start index) pair. *)

type node = {
  oid : Hf_data.Oid.t;
  start : int;
  passed : bool;
  visited : int list;  (** filter indices the run marked, ascending. *)
  spawns : (Hf_data.Oid.t * int) list;
      (** dereference edges: (target oid, landing filter index). *)
  bindings : (string * Hf_data.Value.t list) list;
      (** [->] emissions of this node, in emission order. *)
}

val eval_site :
  plan:Plan.t ->
  find:(Hf_data.Oid.t -> Hf_data.Hobject.t option) ->
  oids:Hf_data.Oid.t list ->
  roots:Hf_data.Oid.t list ->
  stats:Stats.t ->
  node list
(** Evaluate the site's speculation domain: [roots] at start 0 union
    [oids] (the local store) at every landing index, deduplicated by
    (oid, start).  Returns the productive nodes only — passed, spawned,
    or emitted; dangling and fruitless nodes are omitted, which the
    stitcher treats identically to a classic drop. *)

(** The originator's merge state: one expected gather per scattered
    site (the originator's own domain counts as one, fed synchronously
    at seed time). *)
module Stitch : sig
  type t

  type outcome = {
    passed : Hf_data.Oid.t list;
        (** newly activated nodes that fell past the last filter; may
            repeat an oid — apply to a set. *)
    bindings : (string * Hf_data.Value.t list) list;
        (** emissions of newly activated nodes, activation order. *)
    fallback : Work_item.t list;
        (** chains escaping the scattered site set: ship classically. *)
  }

  val empty_outcome : outcome

  val create :
    plan:Plan.t ->
    locate:(Hf_data.Oid.t -> int) ->
    sites:int list ->
    roots:(int * Hf_data.Oid.t list) list ->
    t
  (** [sites] is every scattered site, the originator included;
      [roots] gives each site's seed oids.  [locate] routes spawn
      edges (the engines pass their usual oid-to-site map). *)

  val add_gather : t -> site:int -> node list -> outcome
  (** Install the site's table and activate everything newly reachable:
      the site's roots plus any edges parked waiting for it.  A
      duplicate gather (already installed, or an unknown site) is a
      no-op returning {!empty_outcome}. *)

  val site_dead : t -> site:int -> outcome
  (** The site died before answering: install an empty table and drop
      the edges parked for it — exactly the chains classic shipping
      would have lost at that site (the caller reports [Partial]). *)

  val outstanding : t -> int
  (** Gathers still missing; the originator must not drain before this
      reaches zero. *)
end
