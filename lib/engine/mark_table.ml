(* The mark table of Section 3.1: for each object id, the set of
   processing states at which the object has already been processed.  An
   object removed from W whose state is already marked is ignored — this
   both breaks pointer cycles under transitive closure and suppresses
   duplicate work when several pointers reach the same object.

   Two refinements over a naive "seen" set:

   - Marks are per (object, filter index), not per object — the paper's
     "important subtlety": an object that failed filter F1 must still be
     processed if it is later reached by a dereference landing at F3.

   - Marks also include the item's canonical iteration counters.  The
     paper keys only on filter numbers, which makes finite-iterator
     queries depend on arrival order: an object first reached over a
     long chain (counter >= k, exits the iterator immediately) would
     mask a later arrival over a short chain that could still traverse.
     Counters are canonicalized by [Plan] (star slots pinned to 0,
     finite slots capped at k), so for pure-star queries — the paper's
     experiments — the key degenerates to exactly the paper's
     (object, filter index), while finite-iterator results become
     independent of message ordering.  See DESIGN.md §4b. *)

module Key = struct
  type t = int * int array (* filter index, canonical iteration counters *)

  let compare ((i1, a1) : t) ((i2, a2) : t) =
    match Int.compare i1 i2 with 0 -> Stdlib.compare a1 a2 | c -> c
end

module Key_set = Set.Make (Key)

type t = {
  table : Key_set.t Hf_data.Oid.Table.t; [@hf.guarded_by "locked"]
  lock : Mutex.t option;
      (* Set for the shared-memory multiprocessor engine (paper,
         Section 6), where several domains share one mark table.  Races
         between mem and add can only cause duplicate processing, which
         the paper explicitly tolerates — results are sets. *)
}

let create ?(synchronized = false) () =
  {
    table = Hf_data.Oid.Table.create 64;
    lock = (if synchronized then Some (Mutex.create ()) else None);
  }

let locked t f =
  match t.lock with
  | None -> f ()
  | Some lock ->
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let mem t oid index ~iters =
  locked t (fun () ->
      match Hf_data.Oid.Table.find_opt t.table oid with
      | None -> false
      | Some set -> Key_set.mem (index, iters) set)

let add t oid index ~iters =
  locked t (fun () ->
      let set =
        match Hf_data.Oid.Table.find_opt t.table oid with
        | None -> Key_set.empty
        | Some set -> set
      in
      Hf_data.Oid.Table.replace t.table oid (Key_set.add (index, iters) set))

let marks t oid =
  locked t (fun () ->
      match Hf_data.Oid.Table.find_opt t.table oid with
      | None -> []
      | Some set -> Key_set.elements set)

let marked_indices t oid =
  List.sort_uniq Int.compare (List.map fst (marks t oid))

let cardinal t = locked t (fun () -> Hf_data.Oid.Table.length t.table)

let total_marks t =
  locked t (fun () ->
      Hf_data.Oid.Table.fold (fun _ set acc -> acc + Key_set.cardinal set) t.table 0)

let clear t = locked t (fun () -> Hf_data.Oid.Table.reset t.table)
