(* Scatter-gather evaluation and stitching (doc/execution_modes.md).

   Correctness rests on the eligibility restriction: with no finite
   iterators every counter slot is a pinned-to-zero star, so work items
   are fully determined by (oid, start) and a site can evaluate every
   node of its domain ahead of time, each with a fresh mark table.  The
   stitcher then reproduces classic entry suppression with per-(site,
   oid) covered index sets: a node is activated only when its start
   index is not yet covered, and activation merges its visited indices
   into the cover — the same rule [Eval.run_object] applies against a
   shared per-site mark table. *)

module Oid = Hf_data.Oid

type node = {
  oid : Oid.t;
  start : int;
  passed : bool;
  visited : int list;
  spawns : (Oid.t * int) list;
  bindings : (string * Hf_data.Value.t list) list;
}

let node_key oid start = Fmt.str "%a@%d" Oid.pp oid start

let eval_site ~plan ~find ~oids ~roots ~stats =
  let landing = Hf_query.Plan.landing_pcs (Plan.program plan) in
  let seen = Hashtbl.create 64 in
  let domain = ref [] in
  let push oid start =
    let key = node_key oid start in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      domain := (oid, start) :: !domain
    end
  in
  List.iter (fun oid -> push oid 0) roots;
  List.iter (fun oid -> List.iter (fun pc -> push oid pc) landing) oids;
  let iters = Array.make (Plan.iter_count plan) 0 in
  List.fold_left
    (fun acc (oid, start) ->
      (* Fresh marks per node: the run is self-contained, and entry
         suppression across nodes is the stitcher's job. *)
      let marks = Mark_table.create () in
      let bindings = ref [] in
      let emit ~target values = bindings := (target, values) :: !bindings in
      let item = Work_item.make ~oid ~start ~iters in
      let step = Eval.run_object ~plan ~find ~marks ~stats ~emit item in
      let spawns =
        List.map (fun wi -> (Work_item.oid wi, Work_item.start wi)) step.spawned
      in
      let bindings = List.rev !bindings in
      if step.passed || spawns <> [] || bindings <> [] then
        {
          oid;
          start;
          passed = step.passed;
          visited = Mark_table.marked_indices marks oid;
          spawns;
          bindings;
        }
        :: acc
      else acc)
    [] !domain
  |> List.rev

module Stitch = struct
  type outcome = {
    passed : Oid.t list;
    bindings : (string * Hf_data.Value.t list) list;
    fallback : Work_item.t list;
  }

  let empty_outcome = { passed = []; bindings = []; fallback = [] }

  type t = {
    plan : Plan.t;
    locate : Oid.t -> int;
    members : (int, unit) Hashtbl.t;  (* the scattered site set *)
    tables : (int, (string, node) Hashtbl.t) Hashtbl.t;
    roots : (int, Oid.t list) Hashtbl.t;
    covered : (string, unit) Hashtbl.t;  (* "site/oid@idx" *)
    pending : (int, (Oid.t * int) list ref) Hashtbl.t;
    mutable missing : int;
  }

  let covered_key site oid idx = Fmt.str "%d/%a@%d" site Oid.pp oid idx

  let create ~plan ~locate ~sites ~roots =
    let members = Hashtbl.create 7 in
    List.iter (fun s -> Hashtbl.replace members s ()) sites;
    let root_tbl = Hashtbl.create 7 in
    List.iter (fun (s, oids) -> Hashtbl.replace root_tbl s oids) roots;
    {
      plan;
      locate;
      members;
      tables = Hashtbl.create 7;
      roots = root_tbl;
      covered = Hashtbl.create 64;
      pending = Hashtbl.create 7;
      missing = List.length sites;
    }

  let outstanding t = t.missing

  (* Activate everything reachable from [queue] across every installed
     table, parking edges toward not-yet-gathered members and turning
     edges that escape the member set into classic work items. *)
  let drain t queue =
    let passed = ref [] in
    let bindings = ref [] in
    let fallback = ref [] in
    let q = Queue.create () in
    List.iter (fun e -> Queue.add e q) queue;
    let activate site node =
      List.iter
        (fun idx -> Hashtbl.replace t.covered (covered_key site node.oid idx) ())
        node.visited;
      if node.passed then passed := node.oid :: !passed;
      List.iter (fun b -> bindings := b :: !bindings) node.bindings;
      List.iter
        (fun (target, pc) ->
          let dst = t.locate target in
          if Hashtbl.mem t.members dst then
            if Hashtbl.mem t.tables dst then Queue.add (dst, target, pc) q
            else begin
              let parked =
                match Hashtbl.find_opt t.pending dst with
                | Some r -> r
                | None ->
                  let r = ref [] in
                  Hashtbl.replace t.pending dst r;
                  r
              in
              parked := (target, pc) :: !parked
            end
          else
            fallback :=
              Work_item.make ~oid:target ~start:pc
                ~iters:(Array.make (Plan.iter_count t.plan) 0)
              :: !fallback)
        node.spawns
    in
    while not (Queue.is_empty q) do
      let site, oid, start = Queue.pop q in
      if not (Hashtbl.mem t.covered (covered_key site oid start)) then
        match Hashtbl.find_opt t.tables site with
        | None -> ()  (* guarded before enqueue; defensive *)
        | Some table -> (
          match Hashtbl.find_opt table (node_key oid start) with
          | None -> ()  (* unproductive or dangling: classic drop *)
          | Some node -> activate site node)
    done;
    {
      passed = List.rev !passed;
      bindings = List.rev !bindings;
      fallback = List.rev !fallback;
    }

  let add_gather t ~site nodes =
    if (not (Hashtbl.mem t.members site)) || Hashtbl.mem t.tables site then
      empty_outcome
    else begin
      let table = Hashtbl.create (max 16 (List.length nodes * 2)) in
      List.iter
        (fun node -> Hashtbl.replace table (node_key node.oid node.start) node)
        nodes;
      Hashtbl.replace t.tables site table;
      t.missing <- t.missing - 1;
      let roots =
        match Hashtbl.find_opt t.roots site with Some l -> l | None -> []
      in
      let parked =
        match Hashtbl.find_opt t.pending site with
        | Some r ->
          Hashtbl.remove t.pending site;
          List.rev !r
        | None -> []
      in
      let queue =
        List.map (fun oid -> (site, oid, 0)) roots
        @ List.map (fun (oid, pc) -> (site, oid, pc)) parked
      in
      drain t queue
    end

  let site_dead t ~site =
    if (not (Hashtbl.mem t.members site)) || Hashtbl.mem t.tables site then
      empty_outcome
    else begin
      Hashtbl.replace t.tables site (Hashtbl.create 1);
      t.missing <- t.missing - 1;
      (* Parked edges and seed roots for the dead site are lost, just
         as classic shipping loses the items it sent there. *)
      Hashtbl.remove t.pending site;
      Hashtbl.remove t.roots site;
      empty_outcome
    end
end
