(* The E function of Section 3.1 and the per-object processing loop.

   [run_object] takes one work item from the working set and pushes the
   object through the filters from its start index until it either falls
   past the last filter (it passed the query) or fails a filter.  The
   caller supplies the mark table (checked on entry, updated per filter
   index visited), receives the work items spawned by dereferences (to
   route locally or remotely), and receives the values emitted by
   [Retrieve] filters.

   Design notes, where the paper leaves latitude:
   - Bindings collected while scanning an object's tuples for one filter
     are installed after the scan, so a [Use] pattern inside a filter
     sees only bindings from earlier filters (deterministic in tuple
     order).
   - A [Retrieve] filter behaves as a selection with wildcard data: the
     object passes iff some tuple matches (type, key); the data fields of
     all matching tuples are emitted. *)

module F = Hf_query.Filter
module P = Hf_query.Pattern

type step_result = {
  spawned : Work_item.t list;
  passed : bool;
  skipped : bool; (* the mark table suppressed processing entirely *)
}

(* One selection or retrieve scan over the object's tuples.  Returns
   whether any tuple matched; accumulates new bindings and emitted
   values. *)
let scan_tuples ~stats ~mvars ~ttype ~key ~data ~on_data obj =
  let lookup = Mvars.lookup mvars in
  let matched = ref false in
  let new_bindings = ref [] in
  let try_bind pattern value =
    match P.binds pattern with
    | Some var -> new_bindings := (var, value) :: !new_bindings
    | None -> ()
  in
  let check tuple =
    stats.Stats.tuples_examined <- stats.Stats.tuples_examined + 1;
    let tv = Hf_data.Value.str (Hf_data.Tuple.ttype tuple) in
    let kv = Hf_data.Tuple.key tuple in
    let dv = Hf_data.Tuple.data tuple in
    if P.matches ttype tv ~lookup && P.matches key kv ~lookup && P.matches data dv ~lookup
    then begin
      matched := true;
      try_bind ttype tv;
      try_bind key kv;
      try_bind data dv;
      on_data dv
    end
  in
  List.iter check (Hf_data.Hobject.tuples obj);
  Mvars.add_all mvars (List.rev !new_bindings);
  !matched

let run_object ~plan ~find ~marks ~stats ~emit item =
  let program = Plan.program plan in
  let n = Plan.length plan in
  let oid = Work_item.oid item in
  let item_iters = Work_item.iters item in
  if Mark_table.mem marks oid (Work_item.start item) ~iters:item_iters then begin
    stats.Stats.objects_skipped <- stats.Stats.objects_skipped + 1;
    { spawned = []; passed = false; skipped = true }
  end
  else begin
    match find oid with
    | None ->
      stats.Stats.dangling <- stats.Stats.dangling + 1;
      { spawned = []; passed = false; skipped = false }
    | Some obj ->
      stats.Stats.objects_processed <- stats.Stats.objects_processed + 1;
      let tuples_before = stats.Stats.tuples_examined in
      let mvars = Mvars.create () in
      let spawned = ref [] in
      (* [start] is mutable per the paper: an iterator sends the object
         back to its body by lowering start, so that the same iterator
         lets it exit on the next encounter. *)
      let start = ref (Work_item.start item) in
      let next = ref (Work_item.start item) in
      let alive = ref true in
      (* Indices this walk has visited itself: an iterator loop-back
         re-enters its own marks and must proceed, but a mark left by
         ANOTHER item means that item already pushed the object through
         this suffix — continuing would duplicate its emissions, spawns
         and pass.  Without this mid-walk check the outcome depends on
         which overlapping item ran first (arrival order), and a
         distributed run can disagree with the same engine run over a
         single store. *)
      let visited = Hashtbl.create 8 in
      while
        !alive && !next < n
        &&
        if
          (not (Hashtbl.mem visited !next))
          && Mark_table.mem marks oid !next ~iters:item_iters
        then begin
          alive := false;
          false
        end
        else true
      do
        Hashtbl.replace visited !next ();
        Mark_table.add marks oid !next ~iters:item_iters;
        stats.Stats.filter_steps <- stats.Stats.filter_steps + 1;
        (match Hf_query.Program.get program !next with
         | F.Select { ttype; key; data } ->
           let matched =
             scan_tuples ~stats ~mvars ~ttype ~key ~data ~on_data:(fun _ -> ()) obj
           in
           if matched then incr next else alive := false
         | F.Retrieve { ttype; key; target } ->
           let values = ref [] in
           let matched =
             scan_tuples ~stats ~mvars ~ttype ~key ~data:P.any
               ~on_data:(fun v -> values := v :: !values)
               obj
           in
           if matched then begin
             let values = List.rev !values in
             stats.Stats.values_emitted <- stats.Stats.values_emitted + List.length values;
             emit ~target values;
             incr next
           end
           else alive := false
         | F.Deref { var; mode } ->
           let deref_index = !next in
           let targets = List.filter_map Hf_data.Value.as_pointer (Mvars.lookup mvars var) in
           let spawn target =
             stats.Stats.derefs <- stats.Stats.derefs + 1;
             stats.Stats.spawned <- stats.Stats.spawned + 1;
             spawned := Work_item.spawn plan ~deref_index ~target item :: !spawned
           in
           List.iter spawn targets;
           (match mode with
            | F.Keep_parent -> incr next
            | F.Replace -> alive := false)
         | F.Iter { body_start; count } ->
           let iter_index = !next in
           let slot = Plan.slot_of_iterator plan iter_index in
           let chain = Work_item.iter_at item slot in
           let exits =
             !start <= body_start
             || (match count with F.Finite k -> chain >= k | F.Star -> false)
           in
           if exits then incr next
           else begin
             (* New to this iterator and the pointer chain is short:
                go around the body; lower start so the object exits on
                the next encounter. *)
             start := body_start;
             next := body_start
           end)
      done;
      Hf_obs.Histogram.observe stats.Stats.tuples_per_object
        (float_of_int (stats.Stats.tuples_examined - tuples_before));
      { spawned = List.rev !spawned; passed = !alive; skipped = false }
  end
