(* Instrumentation counters for one query evaluation.  These drive both
   the unit tests (e.g. "the cycle was broken: no object processed
   twice from the same start") and the cost accounting of the
   benchmarks.

   The counters stay plain mutable ints — the evaluator bumps them in
   its innermost loops — and [register] exposes them as views in an
   [Hf_obs.Registry], so engine numbers report through the same
   pp/to_json path as the server and transport metrics. *)

type t = {
  mutable objects_processed : int; (* productive removals from W *)
  mutable objects_skipped : int; (* removals suppressed by the mark table *)
  mutable filter_steps : int; (* applications of the E function *)
  mutable tuples_examined : int;
  mutable derefs : int; (* dereferenced pointer values *)
  mutable spawned : int; (* work items created by dereferences *)
  mutable dangling : int; (* pointers to objects that do not exist *)
  mutable results : int; (* objects added to the result set *)
  mutable values_emitted : int; (* values shipped by the -> operator *)
  tuples_per_object : Hf_obs.Histogram.t;
      (* distribution of tuples scanned per processed object: the
         per-object work the paper's 8 ms basic time abstracts over *)
}

let create () =
  {
    objects_processed = 0;
    objects_skipped = 0;
    filter_steps = 0;
    tuples_examined = 0;
    derefs = 0;
    spawned = 0;
    dangling = 0;
    results = 0;
    values_emitted = 0;
    tuples_per_object = Hf_obs.Histogram.create ();
  }

let merge a b =
  {
    objects_processed = a.objects_processed + b.objects_processed;
    objects_skipped = a.objects_skipped + b.objects_skipped;
    filter_steps = a.filter_steps + b.filter_steps;
    tuples_examined = a.tuples_examined + b.tuples_examined;
    derefs = a.derefs + b.derefs;
    spawned = a.spawned + b.spawned;
    dangling = a.dangling + b.dangling;
    results = a.results + b.results;
    values_emitted = a.values_emitted + b.values_emitted;
    tuples_per_object = Hf_obs.Histogram.merge a.tuples_per_object b.tuples_per_object;
  }

let register ?(prefix = "hf.engine") t registry =
  let c name read = Hf_obs.Registry.register_counter registry (prefix ^ "." ^ name) read in
  c "objects_processed" (fun () -> t.objects_processed);
  c "objects_skipped" (fun () -> t.objects_skipped);
  c "filter_steps" (fun () -> t.filter_steps);
  c "tuples_examined" (fun () -> t.tuples_examined);
  c "derefs" (fun () -> t.derefs);
  c "spawned" (fun () -> t.spawned);
  c "dangling" (fun () -> t.dangling);
  c "results" (fun () -> t.results);
  c "values_emitted" (fun () -> t.values_emitted);
  Hf_obs.Registry.register_histogram registry (prefix ^ ".tuples_per_object")
    t.tuples_per_object

let pp ppf t =
  Fmt.pf ppf
    "processed=%d skipped=%d steps=%d tuples=%d derefs=%d spawned=%d dangling=%d results=%d \
     emitted=%d"
    t.objects_processed t.objects_skipped t.filter_steps t.tuples_examined t.derefs t.spawned
    t.dangling t.results t.values_emitted
