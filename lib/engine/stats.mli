(** Instrumentation counters for one query evaluation. *)

type t = {
  mutable objects_processed : int;  (** productive removals from W. *)
  mutable objects_skipped : int;  (** removals suppressed by the mark table. *)
  mutable filter_steps : int;  (** applications of the E function. *)
  mutable tuples_examined : int;
  mutable derefs : int;  (** dereferenced pointer values. *)
  mutable spawned : int;  (** work items created by dereferences. *)
  mutable dangling : int;  (** pointers to objects that do not exist. *)
  mutable results : int;  (** objects added to the result set. *)
  mutable values_emitted : int;  (** values shipped by the [->] operator. *)
  tuples_per_object : Hf_obs.Histogram.t;
      (** distribution of tuples scanned per processed object. *)
}

val create : unit -> t

val merge : t -> t -> t
(** Field-wise sum (fresh record); histograms merge. *)

val register : ?prefix:string -> t -> Hf_obs.Registry.t -> unit
(** Install every counter (and the per-object histogram) as views in
    [registry] under [prefix] (default ["hf.engine"]). *)

val pp : Format.formatter -> t -> unit
