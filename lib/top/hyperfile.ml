(** HyperFile — distributed processing of filtering queries.

    Umbrella module: every library of the system under one name, so an
    application can [open Hyperfile] (or depend on the [hyperfile]
    library alone) and reach the whole API.

    Start with {!Embedded} for a ready-to-use multi-site server, or see
    [examples/quickstart.ml]. *)

(** {1 Data model (paper §2)} *)

module Oid = Hf_data.Oid
module Value = Hf_data.Value
module Tuple = Hf_data.Tuple
module Hobject = Hf_data.Hobject
module Store = Hf_data.Store

(** {1 Query language (paper §2)} *)

module Pattern = Hf_query.Pattern
module Filter = Hf_query.Filter
module Ast = Hf_query.Ast
module Program = Hf_query.Program
module Compile = Hf_query.Compile
module Parser = Hf_query.Parser
module Printer = Hf_query.Printer
module Validate = Hf_query.Validate
module Builder = Hf_query.Builder
module Matcher = Hf_query.Matcher

(** {1 Query engine (paper §3.1)} *)

module Plan = Hf_engine.Plan
module Work_item = Hf_engine.Work_item
module Mark_table = Hf_engine.Mark_table
module Eval = Hf_engine.Eval
module Local = Hf_engine.Local
module Engine_stats = Hf_engine.Stats

(** {1 Distributed server (paper §3.2) and its substrates} *)

module Cluster = Hf_server.Cluster
module Clusters = Hf_server.Instances
module Server_metrics = Hf_server.Metrics
module Sim = Hf_sim.Sim
module Costs = Hf_sim.Costs
module Trace = Hf_sim.Trace
module Message = Hf_proto.Message
module Codec = Hf_proto.Codec
module Frame = Hf_proto.Frame
module Tcp_site = Hf_net.Tcp_site

(** {1 Termination detection (paper §4)} *)

module Credit = Hf_termination.Credit
module Weighted = Hf_termination.Weighted
module Dijkstra_scholten = Hf_termination.Dijkstra_scholten
module Four_counter = Hf_termination.Four_counter

(** {1 Naming, indexing, persistence} *)

module Name_service = Hf_naming.Name_service
module Keyword_index = Hf_index.Keyword_index
module Reachability = Hf_index.Reachability
module Planner = Hf_index.Planner
module Backlinks = Hf_index.Backlinks
module Snapshot = Hf_persist.Snapshot
module Wal = Hf_persist.Wal
module Blob_store = Hf_persist.Blob_store

(** {1 Parallel engine (paper §6)} *)

module Shared_engine = Hf_parallel.Shared_engine

(** {1 Clients, workload, baseline} *)

module Embedded = Hf_client.Embedded
module Script = Hf_client.Script
module Synthetic = Hf_workload.Synthetic
module Workload_queries = Hf_workload.Queries
module File_server = Hf_baseline.File_server

(** {1 Observability} *)

module Span = Hf_obs.Span
module Tracer = Hf_obs.Tracer
module Histogram = Hf_obs.Histogram
module Registry = Hf_obs.Registry
module Json = Hf_obs.Json

(** {1 Utilities} *)

module Prng = Hf_util.Prng
module Stats = Hf_util.Stats
