(* Shared-memory multiprocessor query processing (paper, Section 6):
   "all available processors can share the same general query
   information, mark table, and working set.  Each processor must have
   space for local information, such as matching variables, while it is
   processing a particular document.  Given this, each processor
   independently runs the algorithm of Section 3.1.  Termination
   requires that the set be empty, and that no processors are still
   working on the query."

   Implementation: OCaml 5 domains over a mutex-protected working set
   and a synchronized mark table.  Exactly as the paper notes, no strict
   locking prevents two domains from racing on the same document — a
   mem/add race can only cause duplicate processing, and results are
   sets, so answers stay correct.  Termination is the textbook
   all-idle-and-empty condition under the working-set lock. *)

type shared = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  work : Hf_engine.Work_item.t Hf_util.Deque.t; [@hf.guarded_by "locked"]
  mutable idle : int; [@hf.guarded_by "locked"]
  mutable finished : bool; [@hf.guarded_by "locked"]
  mutable result_set : Hf_data.Oid.Set.t; [@hf.guarded_by "locked"]
  bindings : (string, Hf_data.Value.t list) Hashtbl.t; [@hf.guarded_by "locked"]
}

let locked shared f =
  Mutex.lock shared.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shared.mutex) f

let push_spawned shared items =
  if items <> [] then
    locked shared (fun () ->
        List.iter (fun item -> Hf_util.Deque.push_back shared.work item) items;
        Condition.broadcast shared.not_empty)

(* Take the next item, or detect global termination: the working set is
   empty and every other domain is already idle.

   hfcheck R7 audit: the [Condition.wait] below is the one blocking
   operation under [locked], and it is the paired form — it releases
   [shared.mutex] (the only lock held) while parked, so it cannot hold
   the guard across a block.  Object evaluation itself runs in [worker]
   with no lock held. *)
let next_item shared ~domains =
  locked shared (fun () ->
      let rec await () =
        match Hf_util.Deque.pop_front shared.work with
        | Some item -> Some item
        | None ->
          if shared.finished then None
          else begin
            shared.idle <- shared.idle + 1;
            if shared.idle = domains then begin
              shared.finished <- true;
              Condition.broadcast shared.not_empty;
              None
            end
            else begin
              Condition.wait shared.not_empty shared.mutex;
              shared.idle <- shared.idle - 1;
              await ()
            end
          end
      in
      await ())

let worker shared ~domains ~plan ~find ~marks () =
  let stats = Hf_engine.Stats.create () in
  let passed = ref [] in
  let local_bindings : (string * Hf_data.Value.t list) list ref = ref [] in
  let emit ~target values = local_bindings := (target, values) :: !local_bindings in
  let rec loop () =
    match next_item shared ~domains with
    | None -> ()
    | Some item ->
      let { Hf_engine.Eval.spawned; passed = ok; skipped = _ } =
        Hf_engine.Eval.run_object ~plan ~find ~marks ~stats ~emit item
      in
      push_spawned shared spawned;
      if ok then passed := Hf_engine.Work_item.oid item :: !passed;
      loop ()
  in
  loop ();
  (* Merge worker-local results under the lock. *)
  locked shared (fun () ->
      List.iter
        (fun oid -> shared.result_set <- Hf_data.Oid.Set.add oid shared.result_set)
        !passed;
      List.iter
        (fun (target, values) ->
          let existing =
            match Hashtbl.find_opt shared.bindings target with None -> [] | Some v -> v
          in
          Hashtbl.replace shared.bindings target (existing @ values))
        (List.rev !local_bindings));
  stats

let run ?(domains = 2) ~find program initial =
  if domains < 1 then invalid_arg "Shared_engine.run: domains must be >= 1";
  let plan = Hf_engine.Plan.make program in
  let marks = Hf_engine.Mark_table.create ~synchronized:true () in
  let shared =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      work = Hf_util.Deque.create ();
      idle = 0;
      finished = false;
      result_set = Hf_data.Oid.Set.empty;
      bindings = Hashtbl.create 8;
    }
  in
  locked shared (fun () ->
      List.iter
        (fun oid ->
          Hf_util.Deque.push_back shared.work (Hf_engine.Work_item.initial plan oid))
        initial);
  let helpers =
    List.init (domains - 1) (fun _ ->
        Domain.spawn (worker shared ~domains ~plan ~find ~marks))
  in
  let own_stats = worker shared ~domains ~plan ~find ~marks () in
  let stats =
    List.fold_left
      (fun acc d -> Hf_engine.Stats.merge acc (Domain.join d))
      own_stats helpers
  in
  (* All domains are joined; the lock is only for the checker's benefit. *)
  let result_set, bindings =
    locked shared (fun () ->
        ( shared.result_set,
          Hashtbl.fold (fun target values acc -> (target, values) :: acc) shared.bindings []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b) ))
  in
  stats.Hf_engine.Stats.results <- Hf_data.Oid.Set.cardinal result_set;
  { Hf_engine.Local.results = Hf_data.Oid.Set.elements result_set; result_set; bindings; stats }

let run_store ?domains ~store program initial =
  run ?domains ~find:(Hf_data.Store.find store) program initial
