(** hfcheck orchestration: scan, analyze (per-unit rules plus the
    summarize-then-link whole-program rules), suppress, report. *)

type config = {
  scope : string -> bool;  (** which source files are analyzed at all. *)
  io_scope : string -> bool;  (** where the [io] rule applies. *)
  baseline : (string, unit) Hashtbl.t option;
  rules : string list option;
      (** canonical rule ids to report ([--rules]); [None] = all.
          [allow-syntax] findings are always kept. *)
}

val default_config : ?baseline:(string, unit) Hashtbl.t -> unit -> config
(** Analyze [lib/] and [bin/]; apply the [io] rule to [lib/] only;
    all rules active. *)

val checkable_rules : string list
(** Every rule the pipeline can produce findings for. *)

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted. *)
  suppressed : int;
  baselined : int;
  files_analyzed : int;
  failures : Cmt_load.failure list;
  rules_run : string list;
  functions_summarized : int;
  lock_graph : Linker.graph;  (** the R6 lock-order graph. *)
}

val errors : report -> Finding.t list
(** Error-severity findings: any means a nonzero exit. *)

val analyze_units : config -> Cmt_load.unit_info list -> report
(** Run the full pipeline over a unit set.  The whole-program rules
    (R6-R8) see exactly these units: a cross-module lock cycle is only
    visible when both modules are in the list. *)

val load_units : config -> string -> Cmt_load.unit_info list * Cmt_load.failure list
val analyze_tree : config -> string -> report

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Hf_obs.Json.t
(** Schema [hyperfile-hfcheck/2]: deterministically sorted findings
    plus summary-phase metadata (rules, function and lock counts, the
    lock graph). *)
