(** hfcheck orchestration: scan, analyze, suppress, report. *)

type config = {
  scope : string -> bool;  (** which source files are analyzed at all. *)
  io_scope : string -> bool;  (** where the [io] rule applies. *)
  baseline : (string, unit) Hashtbl.t option;
}

val default_config : ?baseline:(string, unit) Hashtbl.t -> unit -> config
(** Analyze [lib/] and [bin/]; apply the [io] rule to [lib/] only. *)

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted. *)
  suppressed : int;
  baselined : int;
  files_analyzed : int;
  failures : Cmt_load.failure list;
}

val errors : report -> Finding.t list
(** Error-severity findings: any means a nonzero exit. *)

val analyze_unit : config -> Cmt_load.unit_info -> Finding.t list * int * int
(** (kept findings, suppressed count, baselined count) for one unit. *)

val analyze_units : config -> Cmt_load.unit_info list -> report
val load_units : config -> string -> Cmt_load.unit_info list * Cmt_load.failure list
val analyze_tree : config -> string -> report

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Hf_obs.Json.t
