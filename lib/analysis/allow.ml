(* Explicit suppression for hfcheck findings.

   Two mechanisms, both deliberate and reviewable:

   - [@hf.allow "rule[,rule] -- justification"] attributes attached to
     an expression, a value binding, a record field, or (as a floating
     [@@@hf.allow ...]) a whole file.  The justification after ["--"]
     is mandatory: an allow without one is itself a finding
     ([allow-syntax]), so suppressions stay auditable.

   - a committed baseline file of ["rule file:line"] keys, for grand-
     fathering findings during an incremental cleanup (see Driver). *)

let canonical_rules =
  [
    "poly-compare"; "codec-tag"; "guarded-by"; "swallow"; "io"; "lock-order";
    "blocking-under-lock"; "credit-linearity"; "allow-syntax";
  ]

(* Short aliases accepted in attribute payloads. *)
let aliases =
  [
    ("r1", "poly-compare");
    ("r2", "codec-tag");
    ("r3", "guarded-by");
    ("r4", "swallow");
    ("r5", "io");
    ("r6", "lock-order");
    ("r7", "blocking-under-lock");
    ("r8", "credit-linearity");
  ]

let canonicalize rule =
  let rule = String.lowercase_ascii (String.trim rule) in
  match List.assoc_opt rule aliases with
  | Some canonical -> Some canonical
  | None -> if List.mem rule canonical_rules then Some rule else None

type region = {
  rules : string list;  (* canonical ids this region suppresses *)
  justification : string;
  file : string;
  start_cnum : int;
  end_cnum : int;
}

(* --- payload parsing --- *)

let attr_name (attr : Parsetree.attribute) = attr.Parsetree.attr_name.Location.txt

let string_payload (attr : Parsetree.attribute) =
  match attr.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

(* Split ["rules -- justification"] at the first [" -- "]. *)
let split_justification payload =
  let sep = " -- " in
  let n = String.length payload and k = String.length sep in
  let rec find i =
    if i + k > n then None
    else if String.sub payload i k = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    (String.sub payload 0 i, String.trim (String.sub payload (i + k) (n - i - k)))
  | None -> (payload, "")

(* Parse one [@hf.allow] payload into (rules, justification, errors). *)
let parse_allow ~loc payload =
  let rules_part, justification = split_justification payload in
  let rule_names =
    String.split_on_char ',' rules_part |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rules, errors =
    List.fold_left
      (fun (rules, errors) name ->
        match canonicalize name with
        | Some canonical -> (canonical :: rules, errors)
        | None ->
          ( rules,
            Finding.make ~rule:"allow-syntax" ~severity:Finding.Error loc
              (Fmt.str "unknown rule %S in [@hf.allow] (known: %s)" name
                 (String.concat ", " canonical_rules))
            :: errors ))
      ([], []) rule_names
  in
  let errors =
    if rule_names = [] then
      Finding.make ~rule:"allow-syntax" ~severity:Finding.Error loc
        "[@hf.allow] needs a payload: \"rule[,rule] -- justification\""
      :: errors
    else if justification = "" then
      Finding.make ~rule:"allow-syntax" ~severity:Finding.Error loc
        "[@hf.allow] needs a justification: \"rule -- why this is safe\""
      :: errors
    else errors
  in
  (List.rev rules, justification, List.rev errors)

(* --- collection from a typed tree --- *)

type collection = { mutable regions : region list; mutable errors : Finding.t list }

let region_of ~(loc : Location.t) rules justification =
  {
    rules;
    justification;
    file = loc.Location.loc_start.Lexing.pos_fname;
    start_cnum = loc.Location.loc_start.Lexing.pos_cnum;
    end_cnum = loc.Location.loc_end.Lexing.pos_cnum;
  }

let harvest acc ~(scope : Location.t) (attrs : Parsetree.attributes) =
  List.iter
    (fun attr ->
      if attr_name attr = "hf.allow" then begin
        let attr_loc = attr.Parsetree.attr_loc in
        match string_payload attr with
        | None ->
          acc.errors <-
            Finding.make ~rule:"allow-syntax" ~severity:Finding.Error attr_loc
              "[@hf.allow] payload must be a string literal"
            :: acc.errors
        | Some payload ->
          let rules, justification, errors = parse_allow ~loc:attr_loc payload in
          acc.errors <- List.rev_append errors acc.errors;
          if rules <> [] && errors = [] then
            acc.regions <- region_of ~loc:scope rules justification :: acc.regions
      end)
    attrs

let whole_file_scope =
  let pos name = { Lexing.pos_fname = name; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 } in
  fun name ->
    {
      Location.loc_start = pos name;
      loc_end = { (pos name) with Lexing.pos_cnum = max_int };
      loc_ghost = true;
    }

let collect (structure : Typedtree.structure) =
  let acc = { regions = []; errors = [] } in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    harvest acc ~scope:e.exp_loc e.exp_attributes;
    default.expr sub e
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    harvest acc ~scope:vb.vb_loc vb.vb_attributes;
    default.value_binding sub vb
  in
  let type_declaration sub (decl : Typedtree.type_declaration) =
    (match decl.typ_kind with
    | Ttype_record labels ->
      List.iter
        (fun (ld : Typedtree.label_declaration) ->
          harvest acc ~scope:ld.ld_loc ld.ld_attributes)
        labels
    | _ -> ());
    harvest acc ~scope:decl.typ_loc decl.typ_attributes;
    default.type_declaration sub decl
  in
  let structure_item sub (item : Typedtree.structure_item) =
    (match item.str_desc with
    | Tstr_attribute attr ->
      (* [@@@hf.allow ...]: file-wide scope. *)
      harvest acc
        ~scope:(whole_file_scope item.str_loc.Location.loc_start.Lexing.pos_fname)
        [ attr ]
    | _ -> ());
    default.structure_item sub item
  in
  let iterator =
    { default with expr; value_binding; type_declaration; structure_item }
  in
  iterator.structure iterator structure;
  (acc.regions, List.rev acc.errors)

let suppresses region (finding : Finding.t) =
  region.file = finding.Finding.file
  && region.start_cnum <= finding.Finding.cnum
  && finding.Finding.cnum <= region.end_cnum
  && List.mem finding.Finding.rule region.rules

let suppressed_by regions finding = List.exists (fun r -> suppresses r finding) regions

(* --- baseline files --- *)

let load_baseline path =
  let table = Hashtbl.create 16 in
  (match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = String.trim (input_line ic) in
            if line <> "" && not (String.length line > 0 && line.[0] = '#') then
              Hashtbl.replace table line ()
          done
        with End_of_file -> ())
  | exception Sys_error _ -> ());
  table

let save_baseline path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "# hfcheck baseline: one \"rule file:line\" key per line.\n";
      output_string oc "# Regenerate with: hfcheck --write-baseline <this file>\n";
      List.iter
        (fun finding ->
          output_string oc (Finding.key finding);
          output_char oc '\n')
        (List.sort_uniq Finding.compare findings))

let in_baseline table finding = Hashtbl.mem table (Finding.key finding)
