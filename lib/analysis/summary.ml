(* Phase 1 of the whole-program analyzer: walk one typed tree and
   reduce every top-level function to the facts the linker needs —
   which locks it acquires (and under which other locks), which
   blocking operations it reaches directly, which functions it calls,
   and what it does with [Credit.t] values.  No verdicts are issued
   here; Linker joins the summaries across compilation units and runs
   R6/R7/R8 over the joined view.

   Locks are identified as (unit, name): a [@hf.guarded_by "locked"]
   wrapper in tcp_site.ml is the lock "tcp_site.locked", distinct from
   mark_table's "mark_table.locked".  A raw [Mutex.lock m] outside a
   declared wrapper becomes a synthetic lock named after the mutex
   field, so un-annotated modules (e.g. the tracer) still appear in
   the lock graph.

   Held-lock tracking is lexical, like R3's: the argument expressions
   of a guard-wrapper application are "under" that lock.  Two
   deliberate holes keep the model honest about concurrency
   boundaries: the arguments of [Thread.create]/[Domain.spawn] are
   skipped entirely (that code runs on another thread, not under the
   spawner's locks), and [Condition.wait c m] with exactly one lock
   held is the sanctioned paired-condvar idiom (the wait releases that
   very mutex) — it stays out of the direct-finding set but still
   propagates to callers, for whom the wait is foreign. *)

open Typedtree

type lock = { l_unit : string; l_name : string }

let lock_id l = l.l_unit ^ "." ^ l.l_name

let compare_lock a b =
  match String.compare a.l_unit b.l_unit with
  | 0 -> String.compare a.l_name b.l_name
  | c -> c

type block_kind =
  | Unix_op of string
  | Thread_join
  | Thread_delay
  | Condition_wait
  | Domain_join

let block_label = function
  | Unix_op op -> "Unix." ^ op
  | Thread_join -> "Thread.join"
  | Thread_delay -> "Thread.delay"
  | Condition_wait -> "Condition.wait"
  | Domain_join -> "Domain.join"

type acquire = {
  a_lock : lock;
  a_held : lock list;  (* locks lexically held at the acquisition *)
  a_loc : Location.t;
  a_waived : string list;  (* canonical rules waived here by [@hf.allow] *)
}

type block = {
  b_kind : block_kind;
  b_held : lock list;
  b_paired : bool;  (* Condition.wait with exactly the paired mutex held *)
  b_loc : Location.t;
  b_waived : string list;
}

type call = {
  c_comps : string list;  (* normalized path components of the callee *)
  c_held : lock list;
  c_loc : Location.t;
  c_waived : string list;
}

type credit_kind =
  | Credit_ignored
  | Credit_wildcard
  | Credit_unused of string
  | Credit_discarded

type credit_event = { k_kind : credit_kind; k_loc : Location.t }

type fn_summary = {
  f_unit : string;
  f_name : string;  (* lowercase; "sub.name" inside a nested module *)
  f_loc : Location.t;
  acquires : acquire list;
  blocks : block list;
  calls : call list;
  credits : credit_event list;
}

type t = { s_unit : string; s_source : string; fns : fn_summary list }

(* --- name normalization ------------------------------------------------ *)

let unit_of_source source =
  String.lowercase_ascii (Filename.remove_extension (Filename.basename source))

(* Split dune's wrapped-library mangling: "Hf_net__Tcp_site" ->
   ["Hf_net"; "Tcp_site"]. *)
let split_mangled s =
  let n = String.length s in
  let rec go start i acc =
    if i + 1 >= n then List.rev (String.sub s start (n - start) :: acc)
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if n = 0 then [] else go 0 0 []

let normalize_path name =
  String.split_on_char '.' name
  |> List.concat_map split_mangled
  |> List.filter (fun c -> c <> "")
  |> List.map String.lowercase_ascii

let ident_comps (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> normalize_path (Path.name path)
  | _ -> []

(* The (unit, name) a path resolves to: the rightmost component naming
   a known compilation unit splits the path; a bare name belongs to the
   current unit. *)
let resolve ~known_unit ~current_unit comps =
  match comps with
  | [] -> None
  | [ name ] -> Some (current_unit, name)
  | _ ->
    let arr = Array.of_list comps in
    let n = Array.length arr in
    let rec scan i =
      if i < 0 then None
      else if known_unit arr.(i) then
        Some
          ( arr.(i),
            String.concat "."
              (Array.to_list (Array.sub arr (i + 1) (n - i - 1))) )
      else scan (i - 1)
    in
    (match scan (n - 2) with
    | Some r -> Some r
    | None -> Some (current_unit, String.concat "." comps))

let rec last2 = function
  | [ a; b ] -> Some (a, b)
  | _ :: rest -> last2 rest
  | [] -> None

(* --- guard table ------------------------------------------------------- *)

(* (unit, wrapper-name) -> lock, from every [@hf.guarded_by "f"] field
   annotation in every unit: the global table is what lets one module
   enter another module's critical section ([Bad_r6_b.lock_b b (...)])
   and still be seen acquiring that module's lock. *)
let collect_unit_guards table (unit_info : Cmt_load.unit_info) =
  let unit_name = unit_of_source unit_info.Cmt_load.source in
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_type (_, decls) ->
        List.iter
          (fun (decl : type_declaration) ->
            match decl.typ_kind with
            | Ttype_record labels ->
              List.iter
                (fun (ld : label_declaration) ->
                  List.iter
                    (fun attr ->
                      if Allow.attr_name attr = "hf.guarded_by" then
                        match Allow.string_payload attr with
                        | Some guard when guard <> "" ->
                          let guard = String.lowercase_ascii guard in
                          Hashtbl.replace table (unit_name, guard)
                            { l_unit = unit_name; l_name = guard }
                        | _ -> ())
                    ld.ld_attributes)
                labels
            | _ -> ())
          decls
      | _ -> ())
    unit_info.Cmt_load.structure.str_items

let guard_table units =
  let table = Hashtbl.create 16 in
  List.iter (collect_unit_guards table) units;
  table

(* --- blocking-operation classification --------------------------------- *)

(* Unix operations that can park the calling thread (I/O, sleeps,
   child-waits).  Deliberately not here: socket/bind/listen/close/
   setsockopt/stat/gettimeofday — local, bounded-time calls. *)
let blocking_unix_ops =
  [
    "read"; "write"; "single_write"; "connect"; "accept"; "select"; "sleep";
    "sleepf"; "recv"; "send"; "recvfrom"; "sendto"; "waitpid"; "system"; "wait";
  ]

let classify_block comps =
  match last2 comps with
  | Some ("unix", op) when List.mem op blocking_unix_ops -> Some (Unix_op op)
  | Some ("thread", "join") -> Some Thread_join
  | Some ("thread", "delay") -> Some Thread_delay
  | Some ("condition", "wait") -> Some Condition_wait
  | Some ("domain", "join") -> Some Domain_join
  | _ -> None

let is_spawn comps =
  match last2 comps with
  | Some ("thread", "create") | Some ("domain", "spawn") -> true
  | _ -> false

let is_raw_mutex_lock comps =
  match last2 comps with Some ("mutex", "lock") -> true | _ -> false

let is_ignore comps =
  match comps with [ "ignore" ] | [ "stdlib"; "ignore" ] -> true | _ -> false

let is_credit_discard comps =
  match last2 comps with Some ("credit", "discard") -> true | _ -> false

(* --- Credit.t type probes ---------------------------------------------- *)

let is_credit_path name =
  match last2 (normalize_path name) with
  | Some ("credit", "t") -> true
  | _ -> false

(* The head constructor is Credit.t itself (wildcard/unused checks: a
   dropped value that IS credit, not merely a variant containing it). *)
let rec is_exact_credit ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, _, _) -> is_credit_path (Path.name path)
  | Types.Tlink t | Types.Tsubst (t, _) -> is_exact_credit t
  | Types.Tpoly (t, _) -> is_exact_credit t
  | _ -> false

(* Credit.t anywhere in the structural layout (ignore checks: ignoring
   a (Credit.t * Credit.t) split result drops credit too).  Arrows stop
   the search — a closure over credit is not itself a leak. *)
let contains_credit ty =
  let visited = Hashtbl.create 16 in
  let rec go ty =
    let id = Types.get_id ty in
    if Hashtbl.mem visited id then false
    else begin
      Hashtbl.add visited id ();
      match Types.get_desc ty with
      | Types.Tconstr (path, args, _) ->
        is_credit_path (Path.name path) || List.exists go args
      | Types.Ttuple tys -> List.exists go tys
      | Types.Tlink t | Types.Tsubst (t, _) -> go t
      | Types.Tpoly (t, tys) -> List.exists go (t :: tys)
      | _ -> false
    end
  in
  go ty

(* --- allow regions at an event ----------------------------------------- *)

let waived_at (regions : Allow.region list) (loc : Location.t) =
  let file = loc.Location.loc_start.Lexing.pos_fname in
  let cnum = loc.Location.loc_start.Lexing.pos_cnum in
  List.concat_map
    (fun (r : Allow.region) ->
      if r.Allow.file = file && r.Allow.start_cnum <= cnum && cnum <= r.Allow.end_cnum
      then r.Allow.rules
      else [])
    regions

(* --- the per-function walk --------------------------------------------- *)

type fn_acc = {
  mutable acquires : acquire list;
  mutable blocks : block list;
  mutable calls : call list;
  mutable credits : credit_event list;
  bound : (string, string * Location.t) Hashtbl.t;  (* credit vars by stamp *)
  used : (string, unit) Hashtbl.t;  (* ident stamps referenced anywhere *)
}

(* Mark every identifier used under [e] without recording any events:
   applied to the skipped arguments of Thread.create/Domain.spawn so a
   credit binding consumed only by spawned code is not reported as
   unused. *)
let mark_uses acc (e : expression) =
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      Hashtbl.replace acc.used (Ident.unique_name id) ()
    | _ -> ());
    default.expr sub e
  in
  let iterator = { default with expr } in
  iterator.expr iterator e

let positional_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some (e : expression) -> Some e | _ -> None)
    args

(* A name for the mutex in a raw [Mutex.lock m]: the field or variable
   being locked, for the synthetic lock's identity. *)
let mutex_name (e : expression) =
  match e.exp_desc with
  | Texp_field (_, _, ld) -> String.lowercase_ascii ld.Types.lbl_name
  | Texp_ident (path, _, _) -> (
      match last2 ("" :: normalize_path (Path.name path)) with
      | Some (_, last) -> last
      | None -> "mutex")
  | _ -> "mutex"

type env = {
  guards : (string * string, lock) Hashtbl.t;
  known_unit : string -> bool;
  unit_name : string;
  regions : Allow.region list;
}

let resolve_guard env comps =
  match resolve ~known_unit:env.known_unit ~current_unit:env.unit_name comps with
  | Some key -> Hashtbl.find_opt env.guards key
  | None -> None

(* The lock named by a [@@hf.requires_lock "g"] annotation. *)
let requires_lock env g =
  let g = String.lowercase_ascii g in
  match Hashtbl.find_opt env.guards (env.unit_name, g) with
  | Some lock -> lock
  | None -> { l_unit = env.unit_name; l_name = g }

let summarize_expr env ~fn_name (acc : fn_acc) ~initial_held (body : expression) =
  let held = ref initial_held in
  let held_now () = List.sort_uniq compare_lock !held in
  let fn_is_wrapper = Hashtbl.mem env.guards (env.unit_name, fn_name) in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      Hashtbl.replace acc.used (Ident.unique_name id) ()
    | _ -> ());
    match e.exp_desc with
    | Texp_apply (funct, args) -> (
        let comps = ident_comps funct in
        if is_spawn comps then
          (* Concurrency boundary: the spawned body runs on its own
             thread, under none of our locks.  Scan it for identifier
             uses only. *)
          List.iter (fun (_, arg) -> Option.iter (mark_uses acc) arg) args
        else if is_ignore comps then begin
          (match positional_args args with
          | [ arg ] when contains_credit arg.exp_type ->
            acc.credits <- { k_kind = Credit_ignored; k_loc = e.exp_loc } :: acc.credits
          | _ -> ());
          default.expr sub e
        end
        else if is_credit_discard comps then begin
          acc.credits <- { k_kind = Credit_discarded; k_loc = e.exp_loc } :: acc.credits;
          default.expr sub e
        end
        else
          match resolve_guard env comps with
          | Some lock ->
            acc.acquires <-
              {
                a_lock = lock;
                a_held = held_now ();
                a_loc = e.exp_loc;
                a_waived = waived_at env.regions e.exp_loc;
              }
              :: acc.acquires;
            let saved = !held in
            held := lock :: saved;
            default.expr sub e;
            held := saved
          | None ->
            (if is_raw_mutex_lock comps then begin
               (* Inside the declared wrapper itself the raw lock IS the
                  guard; elsewhere it is an undeclared critical section,
                  tracked as a synthetic lock so the graph sees it. *)
               if not fn_is_wrapper then
                 let name =
                   match positional_args args with
                   | arg :: _ -> mutex_name arg
                   | [] -> "mutex"
                 in
                 acc.acquires <-
                   {
                     a_lock = { l_unit = env.unit_name; l_name = name };
                     a_held = held_now ();
                     a_loc = e.exp_loc;
                     a_waived = waived_at env.regions e.exp_loc;
                   }
                   :: acc.acquires
             end
             else
               match classify_block comps with
               | Some kind ->
                 let held = held_now () in
                 acc.blocks <-
                   {
                     b_kind = kind;
                     b_held = held;
                     b_paired = (kind = Condition_wait && List.length held = 1);
                     b_loc = e.exp_loc;
                     b_waived = waived_at env.regions e.exp_loc;
                   }
                   :: acc.blocks
               | None ->
                 if comps <> [] then
                   acc.calls <-
                     {
                       c_comps = comps;
                       c_held = held_now ();
                       c_loc = e.exp_loc;
                       c_waived = waived_at env.regions e.exp_loc;
                     }
                     :: acc.calls);
            default.expr sub e)
    | _ -> default.expr sub e
  in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_any ->
      if is_exact_credit p.pat_type then
        acc.credits <- { k_kind = Credit_wildcard; k_loc = p.pat_loc } :: acc.credits
    | Tpat_var (id, name) ->
      if is_exact_credit p.pat_type then
        if String.length name.Location.txt > 0 && name.Location.txt.[0] = '_' then
          acc.credits <- { k_kind = Credit_wildcard; k_loc = p.pat_loc } :: acc.credits
        else
          Hashtbl.replace acc.bound (Ident.unique_name id)
            (name.Location.txt, p.pat_loc)
    | _ -> ());
    default.pat sub p
  in
  let value_binding sub (vb : value_binding) =
    (* An inner [@@hf.requires_lock] binding: its body assumes the lock. *)
    let requires =
      List.filter_map
        (fun attr ->
          if Allow.attr_name attr = "hf.requires_lock" then Allow.string_payload attr
          else None)
        vb.vb_attributes
    in
    let saved = !held in
    held := List.map (requires_lock env) requires @ saved;
    default.value_binding sub vb;
    held := saved
  in
  let iterator = { default with expr; pat; value_binding } in
  iterator.expr iterator body

let pattern_name (p : pattern) =
  match p.pat_desc with
  | Tpat_var (_, name) -> Some (String.lowercase_ascii name.Location.txt)
  | _ -> None

let summarize_vb env ~prefix (vb : value_binding) =
  let name =
    match pattern_name vb.vb_pat with
    | Some name -> prefix ^ name
    | None ->
      Fmt.str "%s<init:%d>" prefix
        vb.vb_loc.Location.loc_start.Lexing.pos_lnum
  in
  let acc =
    {
      acquires = [];
      blocks = [];
      calls = [];
      credits = [];
      bound = Hashtbl.create 8;
      used = Hashtbl.create 32;
    }
  in
  let requires =
    List.filter_map
      (fun attr ->
        if Allow.attr_name attr = "hf.requires_lock" then Allow.string_payload attr
        else None)
      vb.vb_attributes
  in
  summarize_expr env ~fn_name:name acc
    ~initial_held:(List.map (requires_lock env) requires)
    vb.vb_expr;
  (* Credit bound to a name and never referenced again: dropped on
     scope exit, exactly like a wildcard, just quieter. *)
  let unused =
    Hashtbl.fold
      (fun stamp (var, loc) events ->
        if Hashtbl.mem acc.used stamp then events
        else { k_kind = Credit_unused var; k_loc = loc } :: events)
      acc.bound []
  in
  {
    f_unit = env.unit_name;
    f_name = name;
    f_loc = vb.vb_loc;
    acquires = List.rev acc.acquires;
    blocks = List.rev acc.blocks;
    calls = List.rev acc.calls;
    credits = List.rev (unused @ acc.credits);
  }

let rec summarize_items env ~prefix items =
  List.concat_map
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.map (summarize_vb env ~prefix) vbs
      | Tstr_module mb -> summarize_module env ~prefix mb
      | _ -> [])
    items

and summarize_module env ~prefix (mb : module_binding) =
  let sub_prefix =
    match mb.mb_name.Location.txt with
    | Some name -> prefix ^ String.lowercase_ascii name ^ "."
    | None -> prefix
  in
  let rec of_module_expr (me : module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> summarize_items env ~prefix:sub_prefix str.str_items
    | Tmod_constraint (me, _, _, _) -> of_module_expr me
    | Tmod_functor (_, me) -> of_module_expr me
    | _ -> []
  in
  of_module_expr mb.mb_expr

let of_unit ~guards ~known_units ~regions (unit_info : Cmt_load.unit_info) =
  let unit_name = unit_of_source unit_info.Cmt_load.source in
  let env =
    {
      guards;
      known_unit = (fun name -> List.mem name known_units);
      unit_name;
      regions;
    }
  in
  {
    s_unit = unit_name;
    s_source = unit_info.Cmt_load.source;
    fns = summarize_items env ~prefix:"" unit_info.Cmt_load.structure.str_items;
  }
