(** The hfcheck rule set.

    - [poly-compare] (R1): polymorphic equality/ordering/hashing at
      types containing [Oid.t]/[Value.t] (or functions).
    - [codec-tag] (R2): wire-tag uniqueness, encoder/decoder parity and
      the reserved traced-envelope tag 127, for [write_X]/[read_X]
      pairs dispatching on [write_u8]/[read_u8].
    - [guarded-by] (R3): fields annotated [[@hf.guarded_by "f"]] only
      touched inside an application of [f] or a binding annotated
      [[@@hf.requires_lock "f"]].
    - [swallow] (R4): [try ... with _ -> <constant>].
    - [io] (R5): direct stdout/stderr printing (scoped to [lib/] by the
      driver). *)

val run : Typedtree.structure -> Finding.t list
(** All findings for one typed tree, unsuppressed and unfiltered. *)

val reserved_tag : int
