(** Diagnostics produced by hfcheck rules. *)

type severity = Error | Warning

type t = {
  rule : string;  (** canonical rule id, e.g. ["poly-compare"]. *)
  severity : severity;
  file : string;
  line : int;
  col : int;
  cnum : int;  (** absolute char offset; used for suppression regions. *)
  message : string;
}

val make : rule:string -> severity:severity -> Location.t -> string -> t
val compare : t -> t -> int
val severity_label : severity -> string

val key : t -> string
(** Baseline key ["rule file:line"]; excludes column and message. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Hf_obs.Json.t
