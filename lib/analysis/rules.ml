(* The hfcheck rule set, run over one typed tree (.cmt implementation).

   R1 poly-compare  — polymorphic =, <>, compare, ordering, min/max,
                      Hashtbl.hash, List.mem/assoc and stdlib Hashtbl
                      instantiated at types containing Oid.t/Value.t
                      (presumed-site drift: structural equality sees the
                      routing hint) or containing functions.
   R2 codec-tag     — write_*/read_* pairs: one-byte wire tags must be
                      unique, writer/decoder-consistent per constructor,
                      and never the reserved traced-envelope tag 127.
   R3 guarded-by    — fields declared [@hf.guarded_by "f"] may only be
                      touched lexically inside an application of [f] or
                      inside a binding annotated [@@hf.requires_lock "f"].
   R4 swallow       — [try ... with _ -> <constant>] silently drops an
                      exception.
   R5 io            — direct stdout/stderr printing (reporters only; the
                      driver scopes this rule to lib/).

   Each rule reports at the precise sub-expression, so findings are
   clickable file:line:col locations in the original source. *)

open Typedtree

type ctx = { add : Finding.t -> unit }

let error ctx ~rule loc fmt =
  Fmt.kstr (fun message -> ctx.add (Finding.make ~rule ~severity:Finding.Error loc message)) fmt

let warning ctx ~rule loc fmt =
  Fmt.kstr
    (fun message -> ctx.add (Finding.make ~rule ~severity:Finding.Warning loc message))
    fmt

(* --- small typed-tree helpers ------------------------------------------ *)

let ident_name (e : expression) =
  match e.exp_desc with Texp_ident (path, _, _) -> Some (Path.name path) | _ -> None

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let rec arrow_domain ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, domain, _, _) -> Some domain
  | Types.Tpoly (t, _) -> arrow_domain t
  | _ -> None

let head_path ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, _, _) -> Some (Path.name path)
  | _ -> None

let positional_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some (e : expression) -> Some e | _ -> None)
    args

(* A no-argument constructor ([], None, a constant constructor): comparing
   against one only inspects the tag, which is hint-safe. *)
let is_constant_constructor (e : expression) =
  match e.exp_desc with Texp_construct (_, _, []) -> true | _ -> false

let rec pattern_is_wild : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var (_, name) -> String.length name.Location.txt > 0 && name.Location.txt.[0] = '_'
  | Tpat_alias (inner, _, _) -> pattern_is_wild inner
  | Tpat_value v -> pattern_is_wild (v :> pattern)
  | Tpat_exception inner -> pattern_is_wild inner
  | _ -> false

let rec pattern_constructors : type k. k general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_construct (_, cd, _, _) -> [ cd.Types.cstr_name ]
  | Tpat_or (a, b, _) -> pattern_constructors a @ pattern_constructors b
  | Tpat_alias (inner, _, _) -> pattern_constructors inner
  | Tpat_value v -> pattern_constructors (v :> pattern)
  | _ -> []

let rec pattern_constant : type k. k general_pattern -> (int * Location.t) option =
 fun p ->
  match p.pat_desc with
  | Tpat_constant (Asttypes.Const_int n) -> Some (n, p.pat_loc)
  | Tpat_alias (inner, _, _) -> pattern_constant inner
  | Tpat_value v -> pattern_constant (v :> pattern)
  | _ -> None

(* ======================================================================= *)
(* R1: polymorphic comparison / hashing at identity-bearing types          *)
(* ======================================================================= *)

let eq_ops =
  [
    "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.>"; "Stdlib.<=";
    "Stdlib.>="; "Stdlib.min"; "Stdlib.max";
  ]

let hash_fns =
  [
    "Stdlib.Hashtbl.hash"; "Hashtbl.hash"; "Stdlib.Hashtbl.seeded_hash";
    "Hashtbl.seeded_hash";
  ]

(* Stdlib functions whose first arrow argument is compared with
   polymorphic equality against container elements / assoc keys. *)
let mem_fns =
  [
    "Stdlib.List.mem"; "List.mem"; "Stdlib.List.assoc"; "List.assoc";
    "Stdlib.List.assoc_opt"; "List.assoc_opt"; "Stdlib.List.mem_assoc";
    "List.mem_assoc"; "Stdlib.Array.mem"; "Array.mem";
  ]

let remedy = function
  | Type_probe.Has_identity path ->
    Fmt.str
      "contains %s, whose structural layout includes the presumed-site hint; two names \
       for the same object can differ — use Oid.equal/Oid.compare/Oid.Table or \
       Value.equal instead"
      path
  | Type_probe.Has_function -> "contains a function and would raise at runtime"
  | Type_probe.Clean -> assert false

let flag_poly ctx ~what ~loc ty =
  match Type_probe.probe ty with
  | Type_probe.Clean -> ()
  | verdict ->
    error ctx ~rule:"poly-compare" loc "polymorphic %s at type %s: %s" what
      (Type_probe.describe ty) (remedy verdict)

(* Suppress the generic ident-level check where an application-level
   check already ran (avoids double reports at the same site). *)
let claimed : (Location.t, unit) Hashtbl.t = Hashtbl.create 64

let check_poly_apply ctx (e : expression) =
  match e.exp_desc with
  | Texp_apply (funct, args) -> (
      match ident_name funct with
      | Some name when List.mem name eq_ops ->
        Hashtbl.replace claimed funct.exp_loc ();
        let positional = positional_args args in
        (* [x = []], [x = None]: tag-only comparison, hint-safe. *)
        if not (List.exists is_constant_constructor positional) then begin
          match positional with
          | arg :: _ -> flag_poly ctx ~what:(last_component name) ~loc:e.exp_loc arg.exp_type
          | [] -> (
              match arrow_domain funct.exp_type with
              | Some domain -> flag_poly ctx ~what:(last_component name) ~loc:e.exp_loc domain
              | None -> ())
        end
      | _ -> ())
  | _ -> ()

let check_poly_ident ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) when not (Hashtbl.mem claimed e.exp_loc) ->
    let name = Path.name path in
    if List.mem name eq_ops || List.mem name hash_fns || List.mem name mem_fns then begin
      match arrow_domain e.exp_type with
      | Some domain ->
        let what =
          if List.mem name hash_fns then "Hashtbl.hash"
          else if List.mem name mem_fns then last_component name ^ " (polymorphic equality)"
          else last_component name
        in
        flag_poly ctx ~what ~loc:e.exp_loc domain
      | None -> ()
    end
  | _ -> ()

(* Polymorphic hashtables keyed by an identity-bearing type hash the
   presumed-site hint too: the same object can occupy two buckets. *)
let check_poly_hashtbl ctx (e : expression) =
  match e.exp_desc with
  | Texp_apply (funct, args) -> (
      match ident_name funct with
      | Some name
        when (String.length name >= 15 && String.sub name 0 15 = "Stdlib.Hashtbl.")
             && not (List.mem name hash_fns) -> (
          let candidates =
            e.exp_type :: List.map (fun (a : expression) -> a.exp_type) (positional_args args)
          in
          let key_verdict =
            List.find_map
              (fun ty ->
                match Type_probe.stdlib_hashtbl_key ty with
                | Some key -> (
                    match Type_probe.probe key with
                    | Type_probe.Clean -> None
                    | verdict -> Some (key, verdict))
                | None -> None)
              candidates
          in
          match key_verdict with
          | Some (key, verdict) ->
            error ctx ~rule:"poly-compare" e.exp_loc
              "polymorphic Hashtbl keyed by %s: %s (use Oid.Table)"
              (Type_probe.describe key) (remedy verdict)
          | None -> ())
      | _ -> ())
  | _ -> ()

(* ======================================================================= *)
(* R4: swallowed exceptions                                                *)
(* ======================================================================= *)

let rec trivial_handler (e : expression) =
  match e.exp_desc with
  | Texp_constant _ | Texp_ident _ -> true
  | Texp_construct (_, _, args) -> List.for_all trivial_handler args
  | Texp_tuple es -> List.for_all trivial_handler es
  | _ -> false

let swallow_message =
  "exception swallowed: 'with _ -> <constant>' drops the failure silently; count it, \
   log it, or match the specific exception"

let check_swallow ctx (e : expression) =
  match e.exp_desc with
  | Texp_try (_, cases) ->
    List.iter
      (fun (case : value case) ->
        if pattern_is_wild case.c_lhs && case.c_guard = None && trivial_handler case.c_rhs
        then error ctx ~rule:"swallow" case.c_lhs.pat_loc "%s" swallow_message)
      cases
  | Texp_match (_, cases, _) ->
    List.iter
      (fun (case : computation case) ->
        let is_exception_case =
          match case.c_lhs.pat_desc with Tpat_exception _ -> true | _ -> false
        in
        if
          is_exception_case && pattern_is_wild case.c_lhs && case.c_guard = None
          && trivial_handler case.c_rhs
        then error ctx ~rule:"swallow" case.c_lhs.pat_loc "%s" swallow_message)
      cases
  | _ -> ()

(* ======================================================================= *)
(* R5: stray I/O                                                           *)
(* ======================================================================= *)

let io_fns =
  [
    "Stdlib.print_endline"; "Stdlib.print_string"; "Stdlib.print_newline";
    "Stdlib.print_char"; "Stdlib.print_int"; "Stdlib.print_float"; "Stdlib.print_bytes";
    "Stdlib.prerr_endline"; "Stdlib.prerr_string"; "Stdlib.prerr_newline";
    "Stdlib.Printf.printf"; "Printf.printf"; "Stdlib.Printf.eprintf"; "Printf.eprintf";
    "Stdlib.Format.printf"; "Format.printf"; "Stdlib.Format.eprintf"; "Format.eprintf";
    "Stdlib.Format.print_string"; "Format.print_string";
  ]

let check_io ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) when List.mem (Path.name path) io_fns ->
    error ctx ~rule:"io" e.exp_loc
      "%s prints to the process stdout/stderr from library code; return data or take a \
       formatter (reporters live in bin/)"
      (last_component (Path.name path))
  | _ -> ()

(* ======================================================================= *)
(* R3: lock discipline                                                     *)
(* ======================================================================= *)

(* Record fields annotated [@hf.guarded_by "f"], keyed by
   "typename.label" so that unrelated records sharing a label name don't
   inherit each other's guards.  The guard string names the
   critical-section wrapper function whose argument expressions
   (typically the [fun () -> ...] thunk) form the lexical region where
   access is legal. *)
let collect_guards (structure : structure) =
  let guards = Hashtbl.create 8 in
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_type (_, decls) ->
        List.iter
          (fun (decl : type_declaration) ->
            match decl.typ_kind with
            | Ttype_record labels ->
              List.iter
                (fun (ld : label_declaration) ->
                  List.iter
                    (fun attr ->
                      if Allow.(attr_name attr) = "hf.guarded_by" then
                        match Allow.string_payload attr with
                        | Some guard when guard <> "" ->
                          Hashtbl.replace guards
                            (decl.typ_name.Location.txt ^ "." ^ ld.ld_name.Location.txt)
                            guard
                        | _ -> ())
                    ld.ld_attributes)
                labels
            | _ -> ())
          decls
      | _ -> ())
    structure.str_items;
  guards

let requires_lock_guards (vb : value_binding) =
  List.filter_map
    (fun attr ->
      if Allow.attr_name attr = "hf.requires_lock" then Allow.string_payload attr
      else None)
    vb.vb_attributes

let check_guarded_access ctx ~guards ~held (e : expression) =
  let flag label loc guard =
    error ctx ~rule:"guarded-by" loc
      "field '%s' is guarded by '%s' but accessed outside it; wrap the access in %s \
       (...) or annotate the enclosing binding with [@@hf.requires_lock \"%s\"]"
      label guard guard guard
  in
  let lookup (ld : Types.label_description) =
    match head_path ld.Types.lbl_res with
    | Some record_type ->
      Hashtbl.find_opt guards (last_component record_type ^ "." ^ ld.Types.lbl_name)
    | None -> None
  in
  match e.exp_desc with
  | Texp_field (_, lid, ld) -> (
      match lookup ld with
      | Some guard when not (List.mem guard held) -> flag ld.Types.lbl_name lid.Location.loc guard
      | _ -> ())
  | Texp_setfield (_, lid, ld, _) -> (
      match lookup ld with
      | Some guard when not (List.mem guard held) -> flag ld.Types.lbl_name lid.Location.loc guard
      | _ -> ())
  | _ -> ()

(* ======================================================================= *)
(* R2: codec wire-tag conformance                                          *)
(* ======================================================================= *)

let reserved_tag = 127

type tag_entry = { ctor : string; tag : int; tag_loc : Location.t }

type tag_map = {
  binding : string;  (* write_value, read_value, ... *)
  entries : tag_entry list;
  wildcard : bool;
  default_ctor : string option;
      (* readers only: a default arm that still builds a family
         constructor decodes every leftover tag as that constructor *)
}

(* Peel [fun buf -> fun x -> body] down to the dispatching body. *)
let rec peel_params (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_lhs; c_rhs; c_guard = None } ]; _ }
    when pattern_constructors c_lhs = [] && pattern_constant c_lhs = None ->
    peel_params c_rhs
  | _ -> e

exception Found_tag of int * Location.t

(* First [write_u8 _ <literal>] in evaluation (DFS) order. *)
let first_written_tag (e : expression) =
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_apply (funct, args) when
        (match ident_name funct with
        | Some name -> last_component name = "write_u8"
        | None -> false) ->
      List.iter
        (fun arg ->
          match arg with
          | Asttypes.Nolabel, Some { exp_desc = Texp_constant (Asttypes.Const_int n); exp_loc; _ }
            ->
            raise (Found_tag (n, exp_loc))
          | _ -> ())
        args
    | _ -> ());
    default.expr sub e
  in
  let iterator = { default with expr } in
  match iterator.expr iterator e with
  | () -> None
  | exception Found_tag (n, loc) -> Some (n, loc)

(* Every literal tag handed to write_u8 anywhere under [e]. *)
let all_written_tags (e : expression) =
  let acc = ref [] in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_apply (funct, args) when
        (match ident_name funct with
        | Some name -> last_component name = "write_u8"
        | None -> false) ->
      List.iter
        (fun arg ->
          match arg with
          | Asttypes.Nolabel, Some { exp_desc = Texp_constant (Asttypes.Const_int n); exp_loc; _ }
            ->
            acc := (n, exp_loc) :: !acc
          | _ -> ())
        args
    | _ -> ());
    default.expr sub e
  in
  let iterator = { default with expr } in
  iterator.expr iterator e;
  List.rev !acc

exception Found_ctor of string

(* First constructor of the family's own type built in [e]. *)
let first_constructed_ctor ~family_head (e : expression) =
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_construct (_, cd, _) when head_path cd.Types.cstr_res = Some family_head ->
      raise (Found_ctor cd.Types.cstr_name)
    | _ -> ());
    default.expr sub e
  in
  let iterator = { default with expr } in
  match iterator.expr iterator e with () -> None | exception Found_ctor c -> Some c

type case_view = { ctors : string list; wild : bool; rhs : expression }

let view_case (case : 'k case) =
  {
    ctors = pattern_constructors case.c_lhs;
    wild = pattern_is_wild case.c_lhs;
    rhs = case.c_rhs;
  }

let writer_map ~binding (body : expression) =
  let cases =
    match (peel_params body).exp_desc with
    | Texp_function { cases; _ } -> List.map view_case cases
    | Texp_match (_, cases, _) -> List.map view_case cases
    | _ -> []
  in
  if cases = [] then None
  else
    let entries, wildcard =
      List.fold_left
        (fun (entries, wildcard) case ->
          match (case.ctors, first_written_tag case.rhs) with
          | [], _ -> (entries, wildcard || case.wild)
          | ctors, Some (tag, tag_loc) ->
            (List.map (fun ctor -> { ctor; tag; tag_loc }) ctors @ entries, wildcard)
          | _, None -> (entries, wildcard))
        ([], false) cases
    in
    if entries = [] then None
    else Some { binding; entries = List.rev entries; wildcard; default_ctor = None }

let reader_map ~binding (body : expression) =
  let body = peel_params body in
  match body.exp_desc with
  | Texp_match (scrutinee, cases, _)
    when (match scrutinee.exp_desc with
         | Texp_apply (funct, _) -> (
             match ident_name funct with
             | Some name -> last_component name = "read_u8"
             | None -> false)
         | _ -> false) ->
    let family_head = head_path body.exp_type in
    let entries =
      List.filter_map
        (fun (case : computation case) ->
          match (pattern_constant case.c_lhs, family_head) with
          | Some (tag, tag_loc), Some family_head -> (
              match first_constructed_ctor ~family_head case.c_rhs with
              | Some ctor -> Some { ctor; tag; tag_loc }
              | None -> None)
          | _ -> None)
        cases
    in
    let default_ctor =
      List.find_map
        (fun (case : computation case) ->
          match (pattern_constant case.c_lhs, family_head) with
          | None, Some family_head when pattern_constructors case.c_lhs = [] ->
            first_constructed_ctor ~family_head case.c_rhs
          | _ -> None)
        cases
    in
    if entries = [] then None
    else Some { binding; entries; wildcard = false; default_ctor }
  | _ -> None

let check_duplicate_tags ctx map =
  ignore
    (List.fold_left
       (fun seen entry ->
         (match List.assoc_opt entry.tag seen with
         | Some other when other <> entry.ctor ->
           error ctx ~rule:"codec-tag" entry.tag_loc
             "duplicate wire tag %d in %s: used for both %s and %s" entry.tag map.binding
             other entry.ctor
         | _ -> ());
         (entry.tag, entry.ctor) :: seen)
       [] map.entries)

let check_reserved ctx ~binding body =
  List.iter
    (fun (tag, loc) ->
      if tag = reserved_tag then
        error ctx ~rule:"codec-tag" loc
          "wire tag %d is reserved for the traced-span envelope (Codec.traced_tag) but %s \
           writes it as a message tag"
          reserved_tag binding)
    (all_written_tags body)

let check_parity ctx (writer : tag_map) (reader : tag_map) =
  let reader_by_ctor ctor = List.find_opt (fun e -> e.ctor = ctor) reader.entries in
  let reader_by_tag tag = List.find_opt (fun e -> e.tag = tag) reader.entries in
  List.iter
    (fun w ->
      match reader_by_ctor w.ctor with
      | Some r when r.tag <> w.tag ->
        error ctx ~rule:"codec-tag" w.tag_loc
          "constructor %s: %s writes tag %d but %s decodes it at tag %d" w.ctor
          writer.binding w.tag reader.binding r.tag
      | Some _ -> ()
      | None -> (
          match reader_by_tag w.tag with
          | Some r ->
            error ctx ~rule:"codec-tag" w.tag_loc
              "tag %d: %s writes it for %s but %s decodes it as %s" w.tag writer.binding
              w.ctor reader.binding r.ctor
          | None ->
            if reader.default_ctor <> Some w.ctor then
              error ctx ~rule:"codec-tag" w.tag_loc
                "tag %d (%s) written by %s has no decoder arm in %s" w.tag w.ctor
                writer.binding reader.binding))
    writer.entries;
  if not writer.wildcard then
    List.iter
      (fun r ->
        let produced =
          List.exists (fun w -> w.ctor = r.ctor || w.tag = r.tag) writer.entries
        in
        if not produced then
          warning ctx ~rule:"codec-tag" r.tag_loc
            "decoder arm for tag %d (%s) in %s is never produced by %s" r.tag r.ctor
            reader.binding writer.binding)
      reader.entries

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_codec_tags ctx (structure : structure) =
  let writers = ref [] and readers = ref [] in
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (_, name) ->
              let name = name.Location.txt in
              if starts_with ~prefix:"write_" name then begin
                check_reserved ctx ~binding:name vb.vb_expr;
                match writer_map ~binding:name vb.vb_expr with
                | Some map ->
                  check_duplicate_tags ctx map;
                  let family = String.sub name 6 (String.length name - 6) in
                  writers := (family, map) :: !writers
                | None -> ()
              end
              else if starts_with ~prefix:"read_" name then begin
                match reader_map ~binding:name vb.vb_expr with
                | Some map ->
                  check_duplicate_tags ctx map;
                  let family = String.sub name 5 (String.length name - 5) in
                  readers := (family, map) :: !readers
                | None -> ()
              end
            | _ -> ())
          vbs
      | _ -> ())
    structure.str_items;
  List.iter
    (fun (family, writer) ->
      match List.assoc_opt family !readers with
      | Some reader -> check_parity ctx writer reader
      | None -> ())
    !writers

(* ======================================================================= *)
(* Driver entry: run every rule over one structure                         *)
(* ======================================================================= *)

let run (structure : structure) =
  let findings = ref [] in
  let ctx = { add = (fun f -> findings := f :: !findings) } in
  Hashtbl.reset claimed;
  (* R2 works structure-item-wise. *)
  check_codec_tags ctx structure;
  (* R1/R3/R4/R5 share one expression traversal.  R3 keeps a stack of
     held guards: entering an application of a guard function or the
     body of a [@@hf.requires_lock] binding pushes its guard. *)
  let guards = collect_guards structure in
  let guard_names =
    Hashtbl.fold (fun _ guard acc -> if List.mem guard acc then acc else guard :: acc)
      guards []
  in
  let held = ref [] in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : expression) =
    check_poly_apply ctx e;
    check_poly_hashtbl ctx e;
    check_poly_ident ctx e;
    check_swallow ctx e;
    check_io ctx e;
    check_guarded_access ctx ~guards ~held:!held e;
    let entered_guard =
      match e.exp_desc with
      | Texp_apply (funct, _) -> (
          match ident_name funct with
          | Some name when List.mem (last_component name) guard_names ->
            Some (last_component name)
          | _ -> None)
      | _ -> None
    in
    let saved = !held in
    (match entered_guard with Some guard -> held := guard :: saved | None -> ());
    default.expr sub e;
    held := saved
  in
  let value_binding sub (vb : value_binding) =
    let saved = !held in
    held := requires_lock_guards vb @ saved;
    default.value_binding sub vb;
    held := saved
  in
  let iterator = { default with expr; value_binding } in
  iterator.structure iterator structure;
  List.rev !findings
