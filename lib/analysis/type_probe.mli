(** Environment-free structural probes over [Types.type_expr]. *)

type verdict =
  | Clean
  | Has_identity of string
      (** contains an identity-bearing type; the payload is the
          offending type-constructor path. *)
  | Has_function  (** contains an arrow type: never structurally comparable. *)

val probe : Types.type_expr -> verdict

val forbidden_path : string -> bool
(** Whether a type-constructor path names an identity-bearing type
    ([Oid.t], [Value.t], [Oid.Set.t], ...). *)

val stdlib_hashtbl_key : Types.type_expr -> Types.type_expr option
(** The key type when the argument is a stdlib [('k, 'v) Hashtbl.t]. *)

val describe : Types.type_expr -> string
