(** Loading dune-produced [.cmt] files. *)

type unit_info = {
  cmt_path : string;
  source : string;  (** build-context-relative, e.g. ["lib/proto/codec.ml"]. *)
  structure : Typedtree.structure;
}

type failure = { cmt_path : string; reason : string }

val read : string -> (unit_info option, failure) result
(** [Ok None] for interfaces/packs; [Error] for unreadable files. *)

val scan : string -> string list
(** All [.cmt] paths under a directory, sorted; [] if it is missing. *)
