(** Suppression of hfcheck findings: [@hf.allow] attributes and
    committed baseline files. *)

val canonical_rules : string list

val canonicalize : string -> string option
(** Resolve a rule name or alias ([R1]..[R8], case-insensitive) to its
    canonical id. *)

val attr_name : Parsetree.attribute -> string

val string_payload : Parsetree.attribute -> string option
(** The payload when it is a single string literal. *)

type region = {
  rules : string list;
  justification : string;
  file : string;
  start_cnum : int;
  end_cnum : int;
}

val collect : Typedtree.structure -> region list * Finding.t list
(** All [@hf.allow] regions in a typed tree, plus [allow-syntax]
    findings for malformed payloads (unknown rule, missing
    justification). *)

val suppressed_by : region list -> Finding.t -> bool

val load_baseline : string -> (string, unit) Hashtbl.t
(** Missing file loads as an empty baseline. *)

val save_baseline : string -> Finding.t list -> unit
val in_baseline : (string, unit) Hashtbl.t -> Finding.t -> bool
