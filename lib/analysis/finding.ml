(* A single diagnostic produced by an hfcheck rule.

   Findings carry a stable rule id, a source position taken from the
   typed tree (so [file:line:col] points into the real .ml file, not
   the cmt), and a severity: [Error] findings fail the build, [Warning]
   findings are advisory and never affect the exit code. *)

type severity = Error | Warning

type t = {
  rule : string;  (* canonical rule id, e.g. "poly-compare" *)
  severity : severity;
  file : string;
  line : int;
  col : int;
  cnum : int;  (* absolute char offset; used for suppression regions *)
  message : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity (loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    severity;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    cnum = p.Lexing.pos_cnum;
    message;
  }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

(* Baseline key: deliberately excludes the column and message so small
   edits to a flagged line do not invalidate a committed baseline. *)
let key t = Fmt.str "%s %s:%d" t.rule t.file t.line

let pp ppf t =
  Fmt.pf ppf "%s:%d:%d: %s [%s] %s" t.file t.line t.col (severity_label t.severity)
    t.rule t.message

let to_json t : Hf_obs.Json.t =
  Obj
    [
      ("rule", Str t.rule);
      ("severity", Str (severity_label t.severity));
      ("file", Str t.file);
      ("line", Int t.line);
      ("col", Int t.col);
      ("message", Str t.message);
    ]
