(* Orchestration: scan a build tree, run the per-unit rules (R1-R5)
   over every implementation cmt in scope, summarize every unit and
   link the summaries for the whole-program rules (R6-R8), then apply
   [@hf.allow] regions, the rule filter and the baseline, and render
   text/JSON reports. *)

type config = {
  scope : string -> bool;  (* which source files are analyzed at all *)
  io_scope : string -> bool;  (* where R5 (io) applies *)
  baseline : (string, unit) Hashtbl.t option;
  rules : string list option;  (* canonical ids to keep; None = all *)
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let default_config ?baseline () =
  {
    scope =
      (fun source -> starts_with ~prefix:"lib/" source || starts_with ~prefix:"bin/" source);
    io_scope = (fun source -> starts_with ~prefix:"lib/" source);
    baseline;
    rules = None;
  }

(* Every rule the pipeline can produce findings for, in rule order. *)
let checkable_rules =
  List.filter (fun r -> r <> "allow-syntax") Allow.canonical_rules

type report = {
  findings : Finding.t list;  (* unsuppressed, sorted *)
  suppressed : int;  (* silenced by [@hf.allow] *)
  baselined : int;  (* silenced by the baseline file *)
  files_analyzed : int;
  failures : Cmt_load.failure list;  (* unreadable cmt files *)
  rules_run : string list;
  functions_summarized : int;
  lock_graph : Linker.graph;
}

let errors report =
  List.filter (fun f -> f.Finding.severity = Finding.Error) report.findings

let analyze_units config units =
  (* Per-unit pass: R1-R5 findings plus this unit's allow regions. *)
  let per_unit =
    List.map
      (fun (u : Cmt_load.unit_info) ->
        let raw = Rules.run u.structure in
        let regions, allow_errors = Allow.collect u.structure in
        let raw =
          List.filter
            (fun f -> f.Finding.rule <> "io" || config.io_scope f.Finding.file)
            raw
        in
        (u, raw @ allow_errors, regions))
      units
  in
  (* Whole-program pass: summarize each unit against the global guard
     table, then link.  Regions are per-unit (they only ever match
     their own file) but the linker needs them at summary time to cut
     waived calls out of propagation. *)
  let guards = Summary.guard_table units in
  let known_units =
    List.map (fun (u : Cmt_load.unit_info) -> Summary.unit_of_source u.source) units
  in
  let summaries =
    List.map2
      (fun (u : Cmt_load.unit_info) (_, _, regions) ->
        Summary.of_unit ~guards ~known_units ~regions u)
      units per_unit
  in
  let linked = Linker.link summaries in
  let regions = List.concat_map (fun (_, _, regions) -> regions) per_unit in
  let raw =
    List.concat_map (fun (_, findings, _) -> findings) per_unit
    @ linked.Linker.findings
  in
  let raw =
    match config.rules with
    | None -> raw
    | Some active ->
      List.filter
        (fun f -> f.Finding.rule = "allow-syntax" || List.mem f.Finding.rule active)
        raw
  in
  let suppressed, kept = List.partition (Allow.suppressed_by regions) raw in
  let baselined, kept =
    match config.baseline with
    | None -> ([], kept)
    | Some table -> List.partition (Allow.in_baseline table) kept
  in
  {
    findings = List.sort_uniq Finding.compare kept;
    suppressed = List.length suppressed;
    baselined = List.length baselined;
    files_analyzed = List.length units;
    failures = [];
    rules_run = (match config.rules with None -> checkable_rules | Some r -> r);
    functions_summarized = linked.Linker.functions;
    lock_graph = linked.Linker.graph;
  }

let load_units config root =
  let units, failures =
    List.fold_left
      (fun (units, failures) cmt_path ->
        match Cmt_load.read cmt_path with
        | Ok (Some unit_info) ->
          if config.scope unit_info.Cmt_load.source then (unit_info :: units, failures)
          else (units, failures)
        | Ok None -> (units, failures)
        | Error failure -> (units, failure :: failures))
      ([], []) (Cmt_load.scan root)
  in
  (List.rev units, List.rev failures)

let analyze_tree config root =
  let units, failures = load_units config root in
  let report = analyze_units config units in
  { report with failures }

(* --- reporters --------------------------------------------------------- *)

let pp_report ppf report =
  List.iter (fun finding -> Fmt.pf ppf "%a@." Finding.pp finding) report.findings;
  List.iter
    (fun (failure : Cmt_load.failure) ->
      Fmt.pf ppf "hfcheck: cannot read %s (%s)@." failure.cmt_path failure.reason)
    report.failures;
  let errors = List.length (errors report) in
  let warnings = List.length report.findings - errors in
  Fmt.pf ppf
    "hfcheck: %d error(s), %d warning(s) in %d file(s); %d function(s) summarized, %d \
     lock(s)"
    errors warnings report.files_analyzed report.functions_summarized
    (List.length report.lock_graph.Linker.nodes);
  if report.suppressed > 0 then Fmt.pf ppf "; %d suppressed by [@hf.allow]" report.suppressed;
  if report.baselined > 0 then Fmt.pf ppf "; %d baselined" report.baselined;
  Fmt.pf ppf "@."

let report_to_json report : Hf_obs.Json.t =
  Obj
    [
      ("schema", Str "hyperfile-hfcheck/2");
      ("rules", List (List.map (fun r -> Hf_obs.Json.Str r) report.rules_run));
      ("files_analyzed", Int report.files_analyzed);
      ("functions", Int report.functions_summarized);
      ("locks", Int (List.length report.lock_graph.Linker.nodes));
      ("errors", Int (List.length (errors report)));
      ("warnings", Int (List.length report.findings - List.length (errors report)));
      ("suppressed", Int report.suppressed);
      ("baselined", Int report.baselined);
      ("findings", List (List.map Finding.to_json report.findings));
      ("lock_graph", Linker.graph_to_json report.lock_graph);
      ( "failures",
        List
          (List.map
             (fun (failure : Cmt_load.failure) ->
               Hf_obs.Json.Obj
                 [ ("cmt", Str failure.cmt_path); ("reason", Str failure.reason) ])
             report.failures) );
    ]
