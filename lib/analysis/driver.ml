(* Orchestration: scan a build tree, run the rules over every
   implementation cmt in scope, apply [@hf.allow] regions and the
   baseline, and render text/JSON reports. *)

type config = {
  scope : string -> bool;  (* which source files are analyzed at all *)
  io_scope : string -> bool;  (* where R5 (io) applies *)
  baseline : (string, unit) Hashtbl.t option;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let default_config ?baseline () =
  {
    scope =
      (fun source -> starts_with ~prefix:"lib/" source || starts_with ~prefix:"bin/" source);
    io_scope = (fun source -> starts_with ~prefix:"lib/" source);
    baseline;
  }

type report = {
  findings : Finding.t list;  (* unsuppressed, sorted *)
  suppressed : int;  (* silenced by [@hf.allow] *)
  baselined : int;  (* silenced by the baseline file *)
  files_analyzed : int;
  failures : Cmt_load.failure list;  (* unreadable cmt files *)
}

let errors report =
  List.filter (fun f -> f.Finding.severity = Finding.Error) report.findings

(* Findings for one typed tree: rule output plus allow-syntax errors,
   with out-of-scope R5 findings dropped and suppression regions applied. *)
let analyze_unit config (unit_info : Cmt_load.unit_info) =
  let raw = Rules.run unit_info.structure in
  let regions, allow_errors = Allow.collect unit_info.structure in
  let raw =
    List.filter
      (fun f -> f.Finding.rule <> "io" || config.io_scope f.Finding.file)
      raw
    @ allow_errors
  in
  let suppressed, kept = List.partition (Allow.suppressed_by regions) raw in
  let baselined, kept =
    match config.baseline with
    | None -> ([], kept)
    | Some table -> List.partition (Allow.in_baseline table) kept
  in
  (kept, List.length suppressed, List.length baselined)

let analyze_units config units =
  let findings, suppressed, baselined =
    List.fold_left
      (fun (fs, s, b) unit_info ->
        let kept, suppressed, baselined = analyze_unit config unit_info in
        (List.rev_append kept fs, s + suppressed, b + baselined))
      ([], 0, 0) units
  in
  {
    findings = List.sort_uniq Finding.compare findings;
    suppressed;
    baselined;
    files_analyzed = List.length units;
    failures = [];
  }

let load_units config root =
  let units, failures =
    List.fold_left
      (fun (units, failures) cmt_path ->
        match Cmt_load.read cmt_path with
        | Ok (Some unit_info) ->
          if config.scope unit_info.Cmt_load.source then (unit_info :: units, failures)
          else (units, failures)
        | Ok None -> (units, failures)
        | Error failure -> (units, failure :: failures))
      ([], []) (Cmt_load.scan root)
  in
  (List.rev units, List.rev failures)

let analyze_tree config root =
  let units, failures = load_units config root in
  let report = analyze_units config units in
  { report with failures }

(* --- reporters --------------------------------------------------------- *)

let pp_report ppf report =
  List.iter (fun finding -> Fmt.pf ppf "%a@." Finding.pp finding) report.findings;
  List.iter
    (fun (failure : Cmt_load.failure) ->
      Fmt.pf ppf "hfcheck: cannot read %s (%s)@." failure.cmt_path failure.reason)
    report.failures;
  let errors = List.length (errors report) in
  let warnings = List.length report.findings - errors in
  Fmt.pf ppf "hfcheck: %d error(s), %d warning(s) in %d file(s)" errors warnings
    report.files_analyzed;
  if report.suppressed > 0 then Fmt.pf ppf "; %d suppressed by [@hf.allow]" report.suppressed;
  if report.baselined > 0 then Fmt.pf ppf "; %d baselined" report.baselined;
  Fmt.pf ppf "@."

let report_to_json report : Hf_obs.Json.t =
  Obj
    [
      ("schema", Str "hyperfile-hfcheck/1");
      ("files_analyzed", Int report.files_analyzed);
      ("errors", Int (List.length (errors report)));
      ("warnings", Int (List.length report.findings - List.length (errors report)));
      ("suppressed", Int report.suppressed);
      ("baselined", Int report.baselined);
      ("findings", List (List.map Finding.to_json report.findings));
      ( "failures",
        List
          (List.map
             (fun (failure : Cmt_load.failure) ->
               Hf_obs.Json.Obj
                 [ ("cmt", Str failure.cmt_path); ("reason", Str failure.reason) ])
             report.failures) );
    ]
