(** Phase 2 of the whole-program analyzer: link per-unit
    {!Summary.t}s across compilation units and run the
    interprocedural rules — R6 lock-order (cycle = potential
    deadlock), R7 blocking-under-lock, R8 credit-linearity. *)

type edge = {
  e_from : Summary.lock;
  e_to : Summary.lock;  (** acquired while [e_from] is held *)
  e_loc : Location.t;  (** earliest witness *)
}

type graph = { nodes : Summary.lock list; edges : edge list }
(** The global lock-acquisition graph, deterministically sorted. *)

type result = {
  findings : Finding.t list;
  graph : graph;
  functions : int;  (** functions summarized across all units *)
}

val link : Summary.t list -> result

val dot_of_graph : graph -> string
(** Graphviz rendering of the lock-order graph, edge labels carrying
    the file:line witness — the CI artifact. *)

val graph_to_json : graph -> Hf_obs.Json.t
