(* Structural probes over [Types.type_expr] without an environment.

   hfcheck never loads cmi files or builds a typing [Env.t]: that keeps
   the tool independent of the exact build layout, at the cost of not
   expanding abstract types.  Instead we match type-constructor *paths*
   against a list of known identity-bearing types: [Oid.t] (and its
   [Oid.Set]/[Oid.Table]/[Oid.Map] instances, whose structural layout
   also diverges from identity), plus the concrete types that contain
   Oids transitively.  An [Oid.t] abstract in some other compilation
   unit still shows up here as a [Tconstr] on [Hf_data__Oid.t], which is
   exactly what we match. *)

(* Path names whose values embed object identity (or a hint field) and
   therefore must not be compared, ordered or hashed structurally. *)
let oid_module_marker = "Oid."

let forbidden_suffixes =
  [ "Oid.t"; "Value.t"; "Hobject.t"; "Tuple.t"; "Work_item.t"; "Message.t" ]

let ends_with ~suffix s =
  let n = String.length s and k = String.length suffix in
  n >= k && String.sub s (n - k) k = suffix

(* True when [name] mentions module [Oid.] at a module-name boundary:
   "Hf_data__Oid.t", "Hf_data.Oid.Set.t", "Oid.Table.t"... but not
   "Paranoid.t". *)
let mentions_oid_module name =
  let k = String.length oid_module_marker in
  let n = String.length name in
  let boundary i =
    i = 0
    ||
    match name.[i - 1] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> false | _ -> true
  in
  let rec go i =
    if i + k > n then false
    else if boundary i && String.sub name i k = oid_module_marker then true
    else go (i + 1)
  in
  go 0

let forbidden_path name =
  mentions_oid_module name
  || List.exists (fun suffix -> ends_with ~suffix name) forbidden_suffixes

type verdict =
  | Clean
  | Has_identity of string  (* the offending type-constructor path *)
  | Has_function

(* Depth-first search over the type expression; [visited] breaks cycles
   through recursive types. *)
let probe ty =
  let visited = Hashtbl.create 16 in
  let rec go ty =
    let id = Types.get_id ty in
    if Hashtbl.mem visited id then Clean
    else begin
      Hashtbl.add visited id ();
      match Types.get_desc ty with
      | Types.Tconstr (path, args, _) ->
        let name = Path.name path in
        if forbidden_path name then Has_identity name else first args
      | Types.Tarrow (_, _, _, _) -> Has_function
      | Types.Ttuple tys -> first tys
      | Types.Tpoly (t, tys) -> first (t :: tys)
      | Types.Tlink t | Types.Tsubst (t, _) -> go t
      | Types.Tvariant _ | Types.Tobject _ | Types.Tfield _ | Types.Tnil
      | Types.Tvar _ | Types.Tunivar _ | Types.Tpackage _ ->
        Clean
    end
  and first = function
    | [] -> Clean
    | ty :: rest -> ( match go ty with Clean -> first rest | verdict -> verdict)
  in
  go ty

(* The key type of a polymorphic hashtable type expression, if [ty] is
   [('k, 'v) Hashtbl.t] from the stdlib (not a [Hashtbl.Make] instance,
   whose [t] takes one parameter and carries its own hash). *)
let stdlib_hashtbl_key ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, [ key; _value ], _) when ends_with ~suffix:"Hashtbl.t" (Path.name path)
    ->
    Some key
  | _ -> None

let describe ty = Fmt.str "%a" Printtyp.type_expr ty
