(** Phase 1 of the whole-program analyzer: per-function summaries of
    lock acquisitions, blocking operations, calls and [Credit.t]
    handling, extracted from one typed tree.  {!Linker} joins these
    across compilation units and runs R6/R7/R8. *)

type lock = { l_unit : string; l_name : string }
(** A lock identity: the compilation unit that declares the
    [@hf.guarded_by] wrapper (or owns the raw mutex) and the wrapper /
    mutex-field name, e.g. [{l_unit = "tcp_site"; l_name = "locked"}]. *)

val lock_id : lock -> string
(** ["unit.name"], the graph-node label. *)

val compare_lock : lock -> lock -> int

type block_kind =
  | Unix_op of string
  | Thread_join
  | Thread_delay
  | Condition_wait
  | Domain_join

val block_label : block_kind -> string

type acquire = {
  a_lock : lock;
  a_held : lock list;
  a_loc : Location.t;
  a_waived : string list;
}

type block = {
  b_kind : block_kind;
  b_held : lock list;
  b_paired : bool;
      (** [Condition.wait] holding exactly the paired mutex: the
          sanctioned wait idiom, exempt from direct R7 findings but
          still visible to callers through BLK*. *)
  b_loc : Location.t;
  b_waived : string list;
}

type call = {
  c_comps : string list;  (** normalized, lowercase path components *)
  c_held : lock list;
  c_loc : Location.t;
  c_waived : string list;
}

type credit_kind =
  | Credit_ignored
  | Credit_wildcard
  | Credit_unused of string
  | Credit_discarded

type credit_event = { k_kind : credit_kind; k_loc : Location.t }

type fn_summary = {
  f_unit : string;
  f_name : string;
  f_loc : Location.t;
  acquires : acquire list;
  blocks : block list;
  calls : call list;
  credits : credit_event list;
}

type t = { s_unit : string; s_source : string; fns : fn_summary list }

val unit_of_source : string -> string
(** ["lib/net/tcp_site.ml"] -> ["tcp_site"]. *)

val normalize_path : string -> string list
(** Split a [Path.name] on ["."] and dune's ["__"] mangling,
    lowercased: ["Hf_net__Tcp_site.locked"] -> [["hf_net";
    "tcp_site"; "locked"]]. *)

val resolve :
  known_unit:(string -> bool) ->
  current_unit:string ->
  string list ->
  (string * string) option
(** The (unit, function-name) a normalized path most plausibly names:
    split at the rightmost component that is a known compilation unit;
    bare names belong to the current unit. *)

val guard_table :
  Cmt_load.unit_info list -> (string * string, lock) Hashtbl.t
(** (unit, wrapper-name) -> lock for every [@hf.guarded_by]
    annotation in every unit — global, so cross-module guard
    applications resolve. *)

val of_unit :
  guards:(string * string, lock) Hashtbl.t ->
  known_units:string list ->
  regions:Allow.region list ->
  Cmt_load.unit_info ->
  t
(** Summarize one typed tree.  [regions] ([@hf.allow] spans from the
    same unit) are recorded per event so the linker can cut waived
    calls out of interprocedural propagation, not just suppress the
    local finding. *)
