(* Phase 2 of the whole-program analyzer: join the per-unit summaries
   into one call graph and run the three interprocedural rules.

   R6 lock-order        — build the global lock-acquisition graph (an
                          edge L1 -> L2 whenever L2 can be acquired
                          while L1 is held, directly or through a
                          callee) and report every cycle as a
                          potential deadlock; the graph is exportable
                          as DOT for CI artifacts.
   R7 blocking-under-lock — no blocking operation (Unix I/O,
                          Thread.join/delay, Domain.join, a foreign
                          Condition.wait) and no re-acquisition of an
                          already-held lock may be reachable while a
                          [@hf.guarded_by] lock is held, through any
                          chain of helper functions.
   R8 credit-linearity  — Credit.t is a linear resource: ignored,
                          wildcard-dropped, never-used or explicitly
                          discarded credit is flagged; deliberate
                          drops carry [@hf.allow "credit-linearity --
                          why"].

   Propagation: ACQ*(F) = locks F can acquire, BLK*(F) = blocking
   operations F can reach, both computed by a worklist fixpoint over
   the name-resolved call graph.  A call waived for
   blocking-under-lock is cut out of propagation entirely — that is
   the semantics of such an allow ("this call does not run while the
   lock is held": a deferred thunk, a loopback connect) — while the
   local finding is still emitted and then suppressed by the same
   region, so the suppression count stays honest. *)

open Summary

type edge = { e_from : lock; e_to : lock; e_loc : Location.t }

type graph = { nodes : lock list; edges : edge list }

type result = { findings : Finding.t list; graph : graph; functions : int }

let loc_line (loc : Location.t) =
  let p = loc.Location.loc_start in
  Fmt.str "%s:%d" p.Lexing.pos_fname p.Lexing.pos_lnum

let compare_loc (a : Location.t) (b : Location.t) =
  let pa = a.Location.loc_start and pb = b.Location.loc_start in
  match String.compare pa.Lexing.pos_fname pb.Lexing.pos_fname with
  | 0 -> Int.compare pa.Lexing.pos_cnum pb.Lexing.pos_cnum
  | c -> c

(* --- transitive facts -------------------------------------------------- *)

(* One lock F can (transitively) acquire, with a witness: where, and
   through which direct callee if not acquired by F itself. *)
type acq_fact = { q_lock : lock; q_loc : Location.t; q_via : string option }

type blk_fact = {
  t_kind : block_kind;
  t_loc : Location.t;  (* the ultimate blocking operation *)
  t_via : string option;  (* first callee on the chain from this fn *)
}

type facts = {
  acq : (string, acq_fact) Hashtbl.t;  (* lock_id -> witness *)
  blk : (string, blk_fact) Hashtbl.t;  (* kind@file:line -> witness *)
}

let blk_key kind (loc : Location.t) = block_label kind ^ "@" ^ loc_line loc

let waives rule event_waived = List.mem rule event_waived

let r6 = "lock-order"
let r7 = "blocking-under-lock"
let r8 = "credit-linearity"

let link (summaries : Summary.t list) =
  let summaries =
    List.sort (fun a b -> String.compare a.s_unit b.s_unit) summaries
  in
  let known_units = List.map (fun s -> s.s_unit) summaries in
  let known_unit name = List.mem name known_units in
  (* (unit, fn) -> summary; colliding names (top-level shadowing)
     merge, which is conservative for reachability. *)
  let fns : (string * string, fn_summary) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun s ->
      List.iter
        (fun f ->
          let key = (f.f_unit, f.f_name) in
          match Hashtbl.find_opt fns key with
          | None -> Hashtbl.replace fns key f
          | Some prior ->
            Hashtbl.replace fns key
              {
                prior with
                acquires = prior.acquires @ f.acquires;
                blocks = prior.blocks @ f.blocks;
                calls = prior.calls @ f.calls;
                credits = prior.credits @ f.credits;
              })
        s.fns)
    summaries;
  let resolve_call (c : call) ~current_unit =
    match Summary.resolve ~known_unit ~current_unit c.c_comps with
    | Some key -> Hashtbl.find_opt fns key
    | None -> None
  in
  let all_fns =
    List.concat_map (fun s -> List.map (fun f -> (f.f_unit, f.f_name)) s.fns)
    |> (fun f -> f summaries)
    |> List.sort_uniq compare
  in
  let facts_of : (string * string, facts) Hashtbl.t = Hashtbl.create 256 in
  let facts_for key =
    match Hashtbl.find_opt facts_of key with
    | Some f -> f
    | None ->
      let f = { acq = Hashtbl.create 4; blk = Hashtbl.create 4 } in
      Hashtbl.replace facts_of key f;
      f
  in
  (* Seed direct facts. *)
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      let facts = facts_for key in
      List.iter
        (fun a ->
          if not (waives r6 a.a_waived) then
            let id = lock_id a.a_lock in
            if not (Hashtbl.mem facts.acq id) then
              Hashtbl.replace facts.acq id
                { q_lock = a.a_lock; q_loc = a.a_loc; q_via = None })
        f.acquires;
      List.iter
        (fun b ->
          if not (waives r7 b.b_waived) then
            let key = blk_key b.b_kind b.b_loc in
            if not (Hashtbl.mem facts.blk key) then
              Hashtbl.replace facts.blk key
                { t_kind = b.b_kind; t_loc = b.b_loc; t_via = None })
        f.blocks)
    all_fns;
  (* Fixpoint: each function inherits its callees' facts (first-seen
     witness kept; fact keys carry the origin location so the sets are
     bounded and the iteration terminates). *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        let f = Hashtbl.find fns key in
        let facts = facts_for key in
        List.iter
          (fun c ->
            if not (waives r7 c.c_waived) then
              match resolve_call c ~current_unit:f.f_unit with
              | None -> ()
              | Some callee ->
                let callee_key = (callee.f_unit, callee.f_name) in
                if callee_key <> key then begin
                  let callee_facts = facts_for callee_key in
                  let via = callee.f_unit ^ "." ^ callee.f_name in
                  Hashtbl.iter
                    (fun id (fact : acq_fact) ->
                      if not (Hashtbl.mem facts.acq id) then begin
                        Hashtbl.replace facts.acq id
                          { fact with q_via = Some via };
                        changed := true
                      end)
                    callee_facts.acq;
                  Hashtbl.iter
                    (fun bkey (fact : blk_fact) ->
                      if not (Hashtbl.mem facts.blk bkey) then begin
                        Hashtbl.replace facts.blk bkey
                          { fact with t_via = Some via };
                        changed := true
                      end)
                    callee_facts.blk
                end)
          f.calls)
      all_fns
  done;
  (* --- the lock graph (R6) --- *)
  let edges : (string * string, edge) Hashtbl.t = Hashtbl.create 32 in
  let nodes : (string, lock) Hashtbl.t = Hashtbl.create 16 in
  let add_node l = Hashtbl.replace nodes (lock_id l) l in
  let add_edge e_from e_to e_loc =
    if compare_lock e_from e_to <> 0 then begin
      add_node e_from;
      add_node e_to;
      let key = (lock_id e_from, lock_id e_to) in
      match Hashtbl.find_opt edges key with
      | Some prior when compare_loc prior.e_loc e_loc <= 0 -> ()
      | _ -> Hashtbl.replace edges key { e_from; e_to; e_loc }
    end
  in
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      List.iter
        (fun a ->
          if not (waives r6 a.a_waived) then begin
            add_node a.a_lock;
            List.iter (fun held -> add_edge held a.a_lock a.a_loc) a.a_held
          end)
        f.acquires;
      List.iter
        (fun c ->
          if c.c_held <> [] && not (waives r6 c.c_waived) && not (waives r7 c.c_waived)
          then
            match resolve_call c ~current_unit:f.f_unit with
            | None -> ()
            | Some callee ->
              let callee_facts = facts_for (callee.f_unit, callee.f_name) in
              Hashtbl.iter
                (fun _ (fact : acq_fact) ->
                  List.iter (fun held -> add_edge held fact.q_lock c.c_loc) c.c_held)
                callee_facts.acq)
        f.calls)
    all_fns;
  let findings = ref [] in
  let add_finding ~rule loc fmt =
    Fmt.kstr
      (fun message ->
        findings :=
          Finding.make ~rule ~severity:Finding.Error loc message :: !findings)
      fmt
  in
  (* --- R7: direct blocking / re-acquisition, and call-site reach --- *)
  let pp_locks ppf locks =
    Fmt.(list ~sep:(any ", ") string) ppf (List.map lock_id locks)
  in
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      List.iter
        (fun b ->
          if b.b_held <> [] && not b.b_paired then
            add_finding ~rule:r7 b.b_loc
              "%s while holding %a: the thread can park indefinitely with the lock \
               held, stalling every thread that needs it%s"
              (block_label b.b_kind) pp_locks b.b_held
              (match b.b_kind with
              | Condition_wait ->
                "; Condition.wait releases only its own paired mutex, not the \
                 other locks held here"
              | _ -> ""))
        f.blocks;
      List.iter
        (fun a ->
          if
            List.exists (fun h -> compare_lock h a.a_lock = 0) a.a_held
            && not (waives r7 a.a_waived)
          then
            add_finding ~rule:r7 a.a_loc
              "re-acquisition of %s already held here: Mutex.t is not reentrant, \
               this self-deadlocks"
              (lock_id a.a_lock))
        f.acquires;
      List.iter
        (fun c ->
          if c.c_held <> [] then
            match resolve_call c ~current_unit:f.f_unit with
            | None -> ()
            | Some callee ->
              let callee_id = callee.f_unit ^ "." ^ callee.f_name in
              let callee_facts = facts_for (callee.f_unit, callee.f_name) in
              (* reaches a blocking operation *)
              let worst =
                Hashtbl.fold
                  (fun bkey fact acc ->
                    match acc with
                    | Some (prior_key, _) when String.compare prior_key bkey <= 0 ->
                      acc
                    | _ -> Some (bkey, fact))
                  callee_facts.blk None
              in
              (match worst with
              | Some (_, fact) ->
                add_finding ~rule:r7 c.c_loc
                  "call to %s reaches %s (%s%s) while holding %a" callee_id
                  (block_label fact.t_kind) (loc_line fact.t_loc)
                  (match fact.t_via with
                  | Some via -> ", via " ^ via
                  | None -> "")
                  pp_locks c.c_held
              | None -> ());
              (* re-acquires a lock we already hold *)
              List.iter
                (fun held ->
                  match Hashtbl.find_opt callee_facts.acq (lock_id held) with
                  | Some fact ->
                    add_finding ~rule:r7 c.c_loc
                      "call to %s re-acquires %s already held here (%s%s): Mutex.t \
                       is not reentrant, this self-deadlocks"
                      callee_id (lock_id held) (loc_line fact.q_loc)
                      (match fact.q_via with
                      | Some via -> ", via " ^ via
                      | None -> "")
                  | None -> ())
                c.c_held)
        f.calls;
      (* --- R8 --- *)
      List.iter
        (fun k ->
          match k.k_kind with
          | Credit_ignored ->
            add_finding ~rule:r8 k.k_loc
              "Credit.t value ignored: credit is linear — every piece must flow to \
               a ship, merge or recovered sink, or carry [@hf.allow \
               \"credit-linearity -- why\"]"
          | Credit_wildcard ->
            add_finding ~rule:r8 k.k_loc
              "Credit.t bound to a wildcard pattern is silently dropped: credit is \
               linear — name it and ship/merge/recover it, or carry [@hf.allow \
               \"credit-linearity -- why\"]"
          | Credit_unused var ->
            add_finding ~rule:r8 k.k_loc
              "Credit.t bound to '%s' is never used and drops on scope exit: credit \
               is linear — ship/merge/recover it, or carry [@hf.allow \
               \"credit-linearity -- why\"]"
              var
          | Credit_discarded ->
            add_finding ~rule:r8 k.k_loc
              "explicit Credit.discard: deliberate credit loss must carry [@hf.allow \
               \"credit-linearity -- why the detector no longer needs this credit\"]")
        f.credits)
    all_fns;
  (* --- cycles over the deduplicated edge set (R6) --- *)
  let edge_list =
    Hashtbl.fold (fun _ e acc -> e :: acc) edges []
    |> List.sort (fun a b ->
           match String.compare (lock_id a.e_from) (lock_id b.e_from) with
           | 0 -> String.compare (lock_id a.e_to) (lock_id b.e_to)
           | c -> c)
  in
  let node_list =
    Hashtbl.fold (fun _ l acc -> l :: acc) nodes []
    |> List.sort compare_lock
  in
  (* Tarjan SCC over lock ids. *)
  let adj = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let from = lock_id e.e_from in
      Hashtbl.replace adj from (lock_id e.e_to :: (try Hashtbl.find adj from with Not_found -> [])))
    (List.rev edge_list);
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (try Hashtbl.find adj v with Not_found -> []);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      if List.length scc >= 2 then sccs := List.sort String.compare scc :: !sccs
    end
  in
  List.iter (fun l -> if not (Hashtbl.mem index (lock_id l)) then strongconnect (lock_id l)) node_list;
  List.iter
    (fun scc ->
      let internal =
        List.filter
          (fun e -> List.mem (lock_id e.e_from) scc && List.mem (lock_id e.e_to) scc)
          edge_list
      in
      match internal with
      | [] -> ()
      | first :: _ ->
        add_finding ~rule:r6 first.e_loc
          "lock-order cycle between %s: %s — a potential deadlock; acquire these \
           locks in one global order"
          (String.concat ", " scc)
          (String.concat ", "
             (List.map
                (fun e ->
                  Fmt.str "%s -> %s (%s)" (lock_id e.e_from) (lock_id e.e_to)
                    (loc_line e.e_loc))
                internal)))
    (List.sort compare !sccs);
  {
    findings = List.rev !findings;
    graph = { nodes = node_list; edges = edge_list };
    functions = List.length all_fns;
  }

(* --- DOT export -------------------------------------------------------- *)

let dot_of_graph graph =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph lock_order {\n";
  Buffer.add_string buf "  rankdir=LR;\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun l -> Buffer.add_string buf (Fmt.str "  %S;\n" (lock_id l)))
    graph.nodes;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Fmt.str "  %S -> %S [label=%S];\n" (lock_id e.e_from) (lock_id e.e_to)
           (loc_line e.e_loc)))
    graph.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let graph_to_json graph : Hf_obs.Json.t =
  Obj
    [
      ("nodes", List (List.map (fun l -> Hf_obs.Json.Str (lock_id l)) graph.nodes));
      ( "edges",
        List
          (List.map
             (fun e ->
               Hf_obs.Json.Obj
                 [
                   ("from", Str (lock_id e.e_from));
                   ("to", Str (lock_id e.e_to));
                   ("at", Str (loc_line e.e_loc));
                 ])
             graph.edges) );
    ]
