(* Loading dune-produced .cmt files.

   dune compiles every module with [-bin-annot], leaving
   [_build/default/<dir>/.<lib>.objs/byte/<Mod>.cmt] files whose typed
   trees carry source locations relative to the build-context root —
   exactly the repo-relative [lib/foo/bar.ml] paths findings report. *)

type unit_info = {
  cmt_path : string;
  source : string;  (* e.g. "lib/proto/codec.ml" *)
  structure : Typedtree.structure;
}

type failure = { cmt_path : string; reason : string }

let read path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation structure; cmt_sourcefile = Some source; _ } ->
    Ok (Some { cmt_path = path; source; structure })
  | _ -> Ok None (* interface, pack or partial cmt: nothing to analyze *)
  | exception Cmi_format.Error _ -> Error { cmt_path = path; reason = "bad cmi/cmt format" }
  | exception Sys_error reason -> Error { cmt_path = path; reason }
  | exception Failure reason -> Error { cmt_path = path; reason }

let ends_with ~suffix s =
  let n = String.length s and k = String.length suffix in
  n >= k && String.sub s (n - k) k = suffix

(* All .cmt files under [root], in a stable order. *)
let scan root =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path
          else if ends_with ~suffix:".cmt" path then acc := path :: !acc)
        entries
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists root && Sys.is_directory root then walk root;
  List.rev !acc
