(** Optional event trace for debugging and message-accounting tests. *)

type event = { time : float; site : int; kind : string; detail : string }

type t

val create : ?limit:int -> unit -> t
(** Recording stops after [limit] events (default 100_000); later
    events are counted in {!dropped} so truncation is detectable. *)

val record : t -> time:float -> site:int -> kind:string -> detail:string -> unit

val events : t -> event list
(** In recording order. *)

val count : t -> int

val dropped : t -> int
(** Events that arrived after the limit was reached; {!pp} reports the
    count when non-zero. *)

val count_kind : t -> string -> int

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
