(* Optional event trace for debugging and for the message-accounting
   assertions in tests.  Collection is off unless a trace is installed,
   so the hot path costs one branch. *)

type event = {
  time : float;
  site : int;
  kind : string;
  detail : string;
}

type t = {
  mutable events : event list;
  mutable count : int;
  limit : int;
  mutable dropped : int; (* events past [limit], counted not kept *)
}

let create ?(limit = 100_000) () = { events = []; count = 0; limit; dropped = 0 }

let record t ~time ~site ~kind ~detail =
  if t.count < t.limit then begin
    t.events <- { time; site; kind; detail } :: t.events;
    t.count <- t.count + 1
  end
  else t.dropped <- t.dropped + 1

let events t = List.rev t.events

let count t = t.count

let dropped t = t.dropped

let count_kind t kind =
  List.fold_left (fun acc e -> if String.equal e.kind kind then acc + 1 else acc) 0 t.events

let clear t =
  t.events <- [];
  t.count <- 0;
  t.dropped <- 0

let pp_event ppf e = Fmt.pf ppf "%8.4f site%-2d %-12s %s" e.time e.site e.kind e.detail

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_event) (events t);
  if t.dropped > 0 then Fmt.pf ppf "@,... and %d dropped event(s) past the limit" t.dropped
