(* Discrete-event simulation core: a virtual clock and an event queue.
   Events are closures scheduled at absolute virtual times; the run loop
   pops them in time order (FIFO among equal times, so runs are
   deterministic) and executes them, which may schedule further events.

   This is the testbed substitute for the paper's network of IBM PC/RTs:
   all timing behaviour of the distributed server is expressed as
   scheduled events against this clock. *)

type t = {
  mutable now : float;
  queue : (unit -> unit) Hf_util.Heap.t;
  mutable events_processed : int;
  mutable halted : bool;
}

exception Time_limit_exceeded of float

let create () =
  { now = 0.0; queue = Hf_util.Heap.create (); events_processed = 0; halted = false }

let now t = t.now

let events_processed t = t.events_processed

let pending t = Hf_util.Heap.length t.queue

let schedule_at t ~time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is in the past (now %g)" time t.now);
  Hf_util.Heap.push t.queue time f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) f

let halt t = t.halted <- true

let run ?limit t =
  t.halted <- false;
  let rec loop () =
    if not t.halted then begin
      (* Check the bound on the peeked time before popping: the
         over-limit event must stay queued so a later [run] (with a
         larger limit, or none) resumes from it instead of skipping
         it. *)
      match Hf_util.Heap.peek t.queue with
      | None -> ()
      | Some (time, _) ->
        (match limit with
         | Some max_time when time > max_time -> raise (Time_limit_exceeded time)
         | Some _ | None -> ());
        (match Hf_util.Heap.pop t.queue with
         | None -> assert false
         | Some (time, f) ->
           t.now <- time;
           t.events_processed <- t.events_processed + 1;
           f ();
           loop ())
    end
  in
  loop ()

let step t =
  match Hf_util.Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    t.events_processed <- t.events_processed + 1;
    f ();
    true
