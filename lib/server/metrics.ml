(* Per-query metrics collected by the cluster harness: message counts by
   kind, byte estimates, per-site busy time.  These drive the
   experiment tables (message-cost columns, mark-table ablation) and the
   "queries ship ~40 bytes" accounting. *)

type t = {
  n_sites : int;
  mutable work_messages : int;
  mutable work_items : int; (* work items carried by those messages *)
  mutable work_batches : int; (* work messages that carried >= 2 items *)
  mutable batch_bytes_saved : int;
      (* bytes the per-group program/query headers would have cost had
         each item shipped in its own message *)
  mutable result_messages : int;
  mutable control_messages : int; (* standalone control messages *)
  mutable piggybacked_controls : int; (* controls that rode on result messages *)
  mutable work_bytes : int;
  mutable result_bytes : int;
  mutable duplicate_work_messages : int;
      (* deref requests for (object, start) pairs the receiving site had
         already processed — the cost of local (vs global) mark tables *)
  mutable dropped_messages : int; (* messages the lossy network swallowed *)
  mutable retransmits : int;
      (* transmissions repeated by the reliability layer after an ack
         timeout *)
  mutable dup_drops : int;
      (* deliveries discarded by receiver-side dedup (a retransmitted
         copy of a message that already arrived) *)
  mutable give_ups : int;
      (* messages abandoned after the retry cap — the peer was declared
         unreachable and the message's credit reclaimed *)
  busy : float array; (* per-site CPU busy time *)
  mutable results_shipped : int; (* result items that crossed the network *)
  mutable cache_hits : int;
      (* work items answered from the remote-answer cache instead of
         shipping *)
  mutable cache_misses : int; (* cacheable items that had to ship anyway *)
  mutable cache_prunes : int;
      (* ships skipped because the destination's Bloom summary proved
         the item dead on arrival *)
  mutable cache_validations : int; (* Cache_validate round trips issued *)
  mutable cache_fills : int; (* verdicts installed from Cache_answers *)
  mutable cache_invalidations : int;
      (* entries evicted because the destination reported a different
         store version (or the entry aged out) *)
  mutable scatter_messages : int; (* Scatter broadcasts sent by the originator *)
  mutable gather_messages : int; (* Gather replies merged at the originator *)
  mutable gather_nodes : int; (* speculation nodes those gathers carried *)
  mutable scatter_fallbacks : int;
      (* stitched chains that escaped the scattered site set and were
         re-shipped classically *)
  mutable scatter_bytes : int; (* bytes of Scatter broadcasts *)
  mutable gather_bytes : int; (* bytes of Gather replies *)
  mutable planner_scatter : int; (* planner decisions that chose scatter *)
  mutable planner_ship : int; (* planner decisions that chose shipping *)
}

let create ~n_sites =
  {
    n_sites;
    work_messages = 0;
    work_items = 0;
    work_batches = 0;
    batch_bytes_saved = 0;
    result_messages = 0;
    control_messages = 0;
    piggybacked_controls = 0;
    work_bytes = 0;
    result_bytes = 0;
    duplicate_work_messages = 0;
    dropped_messages = 0;
    retransmits = 0;
    dup_drops = 0;
    give_ups = 0;
    busy = Array.make n_sites 0.0;
    results_shipped = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_prunes = 0;
    cache_validations = 0;
    cache_fills = 0;
    cache_invalidations = 0;
    scatter_messages = 0;
    gather_messages = 0;
    gather_nodes = 0;
    scatter_fallbacks = 0;
    scatter_bytes = 0;
    gather_bytes = 0;
    planner_scatter = 0;
    planner_ship = 0;
  }

let add_busy t site duration = t.busy.(site) <- t.busy.(site) +. duration

let total_messages t =
  t.work_messages + t.result_messages + t.control_messages + t.scatter_messages
  + t.gather_messages

let total_bytes t = t.work_bytes + t.result_bytes + t.scatter_bytes + t.gather_bytes

let total_busy t = Array.fold_left ( +. ) 0.0 t.busy

let max_busy t = Array.fold_left max 0.0 t.busy

(* Every field is exposed as a registry view, so the record stays the
   thing the harness mutates and the registry is just how it reports. *)
let register ?(prefix = "hf.server") t registry =
  let c name read = Hf_obs.Registry.register_counter registry (prefix ^ "." ^ name) read in
  let g name read = Hf_obs.Registry.register_gauge registry (prefix ^ "." ^ name) read in
  c "work_messages" (fun () -> t.work_messages);
  c "work_items" (fun () -> t.work_items);
  c "work_batches" (fun () -> t.work_batches);
  c "batch_bytes_saved" (fun () -> t.batch_bytes_saved);
  c "result_messages" (fun () -> t.result_messages);
  c "control_messages" (fun () -> t.control_messages);
  c "piggybacked_controls" (fun () -> t.piggybacked_controls);
  c "work_bytes" (fun () -> t.work_bytes);
  c "result_bytes" (fun () -> t.result_bytes);
  c "duplicate_work_messages" (fun () -> t.duplicate_work_messages);
  c "dropped_messages" (fun () -> t.dropped_messages);
  c "retransmits" (fun () -> t.retransmits);
  c "dup_drops" (fun () -> t.dup_drops);
  c "give_ups" (fun () -> t.give_ups);
  c "results_shipped" (fun () -> t.results_shipped);
  c "cache_hits" (fun () -> t.cache_hits);
  c "cache_misses" (fun () -> t.cache_misses);
  c "cache_prunes" (fun () -> t.cache_prunes);
  c "cache_validations" (fun () -> t.cache_validations);
  c "cache_fills" (fun () -> t.cache_fills);
  c "cache_invalidations" (fun () -> t.cache_invalidations);
  c "scatter_messages" (fun () -> t.scatter_messages);
  c "gather_messages" (fun () -> t.gather_messages);
  c "gather_nodes" (fun () -> t.gather_nodes);
  c "scatter_fallbacks" (fun () -> t.scatter_fallbacks);
  c "scatter_bytes" (fun () -> t.scatter_bytes);
  c "gather_bytes" (fun () -> t.gather_bytes);
  c "planner_scatter" (fun () -> t.planner_scatter);
  c "planner_ship" (fun () -> t.planner_ship);
  c "total_messages" (fun () -> total_messages t);
  c "total_bytes" (fun () -> total_bytes t);
  g "busy_total_s" (fun () -> total_busy t);
  g "busy_max_s" (fun () -> max_busy t)

let view t =
  let registry = Hf_obs.Registry.create () in
  register t registry;
  registry

let to_json t = Hf_obs.Registry.to_json (view t)

let pp_summary ppf t =
  Fmt.pf ppf
    "work=%d/%d items (%dB, %d batched, %dB saved) result=%d (%dB) control=%d (+%d piggybacked) \
     dup-work=%d dropped=%d rtx=%d dup-drop=%d gave-up=%d shipped=%d cache: hit=%d miss=%d \
     prune=%d fill=%d inval=%d scatter=%d/%d gathers (%d nodes, %d fallbacks) busy: \
     total=%.3fs max=%.3fs"
    t.work_messages t.work_items t.work_bytes t.work_batches t.batch_bytes_saved t.result_messages
    t.result_bytes t.control_messages t.piggybacked_controls t.duplicate_work_messages
    t.dropped_messages t.retransmits t.dup_drops t.give_ups t.results_shipped t.cache_hits
    t.cache_misses t.cache_prunes t.cache_fills t.cache_invalidations t.scatter_messages
    t.gather_messages t.gather_nodes t.scatter_fallbacks (total_busy t) (max_busy t)

let pp = pp_summary
