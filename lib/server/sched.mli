(** Admission and fair scheduling for concurrent queries (DESIGN.md §4h).

    Both engines historically ran one query at a time: the sim cluster
    drained each submission to completion and [Tcp_site.run_query] held
    the site lock for the whole query.  This module supplies the two
    engine-agnostic pieces that make N in-flight queries a first-class
    mode:

    - {!Rr}, a round-robin multi-queue: items are pushed under a tenant
      key (tenant = query origin) and popped fairly across tenants, so
      one chatty origin cannot starve another.  With a single tenant it
      degrades to an exact FIFO — byte-identical scheduling to the old
      single-queue engines, which keeps the single-query benchmarks and
      differential suites unchanged.

    - an admission gate: at most [in_flight_cap] queries run at once per
      gate (one gate per origin site); excess submissions wait in a fair
      queue, and [max_queued] bounds that queue for backpressure.

    The module does no locking and never blocks: callers hold their own
    engine lock (the sim is single-threaded; [Tcp_site] wraps calls in
    its site mutex). *)

module Rr : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> tenant:int -> 'a -> unit
  (** Append to [tenant]'s queue (FIFO within a tenant). *)

  val pop : 'a t -> 'a option
  (** Dequeue from the tenant at the head of the round-robin ring; the
      tenant rotates to the tail if it still has items.  [None] iff
      empty. *)

  val length : 'a t -> int

  val is_empty : 'a t -> bool

  val tenants : 'a t -> int
  (** Number of tenants currently holding at least one item. *)

  val remove : 'a t -> ('a -> bool) -> 'a option
  (** Remove and return the first item (in per-tenant FIFO order,
      tenants in ring order) satisfying the predicate; [None] if no
      item matches.  Used to cancel a queued admission. *)
end

type config = {
  in_flight_cap : int option;
      (** At most this many queries admitted at once; [None] = no cap
          (every submission runs immediately — the pre-concurrency
          behavior). *)
  max_queued : int option;
      (** Bound on the admission queue; a submission that would exceed
          it is rejected (backpressure).  [None] = unbounded. *)
  link_window : int option;
      (** Backpressure threshold on a link's reliable in-flight window:
          an engine pauses shipping on a link holding at least this many
          unacked messages.  [None] = never pause.  Only meaningful when
          the engine's reliability layer is on. *)
}

val unlimited : config
(** No cap, no queue bound, no link window — concurrency-transparent. *)

val validate : config -> unit
(** Raises [Invalid_argument] if any [Some k] field has [k < 1]. *)

val pp_config : Format.formatter -> config -> unit

type decision =
  | Run  (** admitted: a slot was taken, start now *)
  | Queued  (** over the cap: parked in the fair admission queue *)
  | Rejected  (** the admission queue itself is full *)

type 'a t
(** One admission gate (per origin site); ['a] is the queued job
    payload — typically the query id plus a seeding thunk. *)

val create : config -> 'a t
(** Raises [Invalid_argument] on an invalid config. *)

val admit : 'a t -> tenant:int -> 'a -> decision
(** [Run] takes a slot immediately; the job is only stored when the
    answer is [Queued]. *)

val release : 'a t -> 'a option
(** Free the slot held by a finished (or cancelled) admitted query.
    If a job is waiting, it takes over the slot and is returned — the
    caller must start it.  Callers must pair each [release] with a
    prior [Run] (or returned job); the gate does not track identities. *)

val cancel_queued : 'a t -> ('a -> bool) -> 'a option
(** Remove a not-yet-admitted job from the queue (no slot is freed). *)

val running : 'a t -> int

val queued : 'a t -> int

val waiting_tenants : 'a t -> int
(** Distinct tenants with at least one queued job — the fairness gauge:
    queue depth alone cannot tell one flooding origin from many starved
    ones. *)
