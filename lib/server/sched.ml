(* Admission and fair scheduling for concurrent queries — see the .mli
   and DESIGN.md §4h.  No locking here: callers serialize access (the
   sim is single-threaded, Tcp_site holds its site mutex). *)

module Rr = struct
  (* Per-tenant FIFOs plus a ring of tenants that currently hold items.
     The ring is itself a deque: pop takes the head tenant's oldest
     item and rotates the tenant to the tail while it still has work.
     With one tenant the ring never reorders anything, so the whole
     structure is an exact FIFO — the compatibility property the
     single-query suites rely on. *)
  type 'a t = {
    queues : (int, 'a Hf_util.Deque.t) Hashtbl.t;
    ring : int Hf_util.Deque.t;
    mutable count : int;
  }

  let create () = { queues = Hashtbl.create 4; ring = Hf_util.Deque.create (); count = 0 }

  let push t ~tenant x =
    let q =
      match Hashtbl.find_opt t.queues tenant with
      | Some q -> q
      | None ->
        let q = Hf_util.Deque.create () in
        Hashtbl.replace t.queues tenant q;
        q
    in
    if Hf_util.Deque.is_empty q then Hf_util.Deque.push_back t.ring tenant;
    Hf_util.Deque.push_back q x;
    t.count <- t.count + 1

  let pop t =
    match Hf_util.Deque.pop_front t.ring with
    | None -> None
    | Some tenant -> (
        match Hashtbl.find_opt t.queues tenant with
        | None -> None (* unreachable: ring tenants always have a queue *)
        | Some q ->
          let x = Hf_util.Deque.pop_front q in
          (match x with Some _ -> t.count <- t.count - 1 | None -> ());
          if Hf_util.Deque.is_empty q then Hashtbl.remove t.queues tenant
          else Hf_util.Deque.push_back t.ring tenant;
          x)

  let length t = t.count

  let is_empty t = t.count = 0

  let tenants t = Hf_util.Deque.length t.ring

  let remove t p =
    (* Cancellation path: cold, so a rebuild of the one affected queue
       (and, if it empties, the ring) is fine. *)
    let found = ref None in
    let victim_tenant = ref None in
    Hf_util.Deque.to_list t.ring
    |> List.iter (fun tenant ->
           if !found = None then
             match Hashtbl.find_opt t.queues tenant with
             | None -> ()
             | Some q ->
               let items = Hf_util.Deque.to_list q in
               let rec split acc = function
                 | [] -> None
                 | x :: rest when p x -> Some (List.rev_append acc rest, x)
                 | x :: rest -> split (x :: acc) rest
               in
               (match split [] items with
                | None -> ()
                | Some (rest, x) ->
                  found := Some x;
                  t.count <- t.count - 1;
                  Hf_util.Deque.clear q;
                  List.iter (Hf_util.Deque.push_back q) rest;
                  if Hf_util.Deque.is_empty q then begin
                    Hashtbl.remove t.queues tenant;
                    victim_tenant := Some tenant
                  end));
    (match !victim_tenant with
     | None -> ()
     | Some tenant ->
       let ring = Hf_util.Deque.to_list t.ring in
       Hf_util.Deque.clear t.ring;
       List.iter
         (fun r -> if r <> tenant then Hf_util.Deque.push_back t.ring r)
         ring);
    !found
end

type config = {
  in_flight_cap : int option;
  max_queued : int option;
  link_window : int option;
}

let unlimited = { in_flight_cap = None; max_queued = None; link_window = None }

let validate c =
  let check name = function
    | Some k when k < 1 ->
      invalid_arg (Printf.sprintf "Sched.config: %s must be >= 1 (got %d)" name k)
    | Some _ | None -> ()
  in
  check "in_flight_cap" c.in_flight_cap;
  check "max_queued" c.max_queued;
  check "link_window" c.link_window

let pp_config ppf c =
  let opt ppf = function
    | None -> Format.pp_print_string ppf "none"
    | Some k -> Format.pp_print_int ppf k
  in
  Format.fprintf ppf "cap=%a queued<=%a window=%a" opt c.in_flight_cap opt
    c.max_queued opt c.link_window

type decision = Run | Queued | Rejected

type 'a t = { config : config; waiting : 'a Rr.t; mutable running : int }

let create config =
  validate config;
  { config; waiting = Rr.create (); running = 0 }

let admit t ~tenant job =
  match t.config.in_flight_cap with
  | Some cap when t.running >= cap -> (
      match t.config.max_queued with
      | Some bound when Rr.length t.waiting >= bound -> Rejected
      | Some _ | None ->
        Rr.push t.waiting ~tenant job;
        Queued)
  | Some _ | None ->
    t.running <- t.running + 1;
    Run

let release t =
  if t.running > 0 then t.running <- t.running - 1;
  match Rr.pop t.waiting with
  | Some job ->
    t.running <- t.running + 1;
    Some job
  | None -> None

let cancel_queued t p = Rr.remove t.waiting p

let running t = t.running

let queued t = Rr.length t.waiting

let waiting_tenants t = Rr.tenants t.waiting
