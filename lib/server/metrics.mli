(** Per-query metrics collected by the cluster harness. *)

type t = {
  n_sites : int;
  mutable work_messages : int;
  mutable work_items : int;
      (** work items carried by those messages; equals [work_messages]
          when batching is off (K = 1). *)
  mutable work_batches : int;
      (** work messages that carried two or more items. *)
  mutable batch_bytes_saved : int;
      (** bytes the per-group program/query headers would have cost had
          each item shipped in its own message. *)
  mutable result_messages : int;
  mutable control_messages : int;
  mutable piggybacked_controls : int;
      (** termination-control payloads that rode on result messages. *)
  mutable work_bytes : int;
  mutable result_bytes : int;
  mutable duplicate_work_messages : int;
      (** deref requests the receiving site's mark table then ignored —
          the cost of keeping mark tables local (paper, Section 3.2). *)
  mutable dropped_messages : int;
      (** messages the lossy network swallowed before delivery. *)
  mutable retransmits : int;
      (** transmissions repeated by the reliability layer after an ack
          timeout. *)
  mutable dup_drops : int;
      (** deliveries discarded by receiver-side dedup (a retransmitted
          copy of a message that had already arrived). *)
  mutable give_ups : int;
      (** messages abandoned after the retry cap: the peer was declared
          unreachable and the message's credit reclaimed. *)
  busy : float array;  (** per-site CPU busy time (seconds). *)
  mutable results_shipped : int;
      (** result items that crossed the network. *)
  mutable cache_hits : int;
      (** work items answered from the remote-answer cache instead of
          shipping (DESIGN.md §4g). *)
  mutable cache_misses : int;
      (** cacheable items that had to ship anyway. *)
  mutable cache_prunes : int;
      (** ships skipped because the destination's Bloom summary proved
          the item dead on arrival. *)
  mutable cache_validations : int;
      (** [Cache_validate] round trips issued. *)
  mutable cache_fills : int;
      (** verdicts installed from [Cache_answers] messages. *)
  mutable cache_invalidations : int;
      (** entries evicted because the destination reported a different
          store version (or the entry aged past its ttl). *)
  mutable scatter_messages : int;
      (** [Scatter] broadcasts sent by the originator
          (doc/execution_modes.md). *)
  mutable gather_messages : int;
      (** [Gather_result] replies merged at the originator. *)
  mutable gather_nodes : int;
      (** speculation nodes those gathers carried. *)
  mutable scatter_fallbacks : int;
      (** stitched chains that escaped the scattered site set and were
          re-shipped classically. *)
  mutable scatter_bytes : int;  (** bytes of [Scatter] broadcasts. *)
  mutable gather_bytes : int;  (** bytes of [Gather_result] replies. *)
  mutable planner_scatter : int;
      (** planner decisions that chose scatter-gather. *)
  mutable planner_ship : int;
      (** planner decisions that chose classic shipping. *)
}

val create : n_sites:int -> t

val add_busy : t -> int -> float -> unit

val total_messages : t -> int
val total_bytes : t -> int
val total_busy : t -> float
val max_busy : t -> float

val register : ?prefix:string -> t -> Hf_obs.Registry.t -> unit
(** Install every field (plus the derived totals) as views in
    [registry] under [prefix] (default ["hf.server"]). *)

val view : t -> Hf_obs.Registry.t
(** A fresh registry holding only this record's views. *)

val to_json : t -> Hf_obs.Json.t
(** [Registry.to_json] of {!view} — the machine-readable form the bench
    emits. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line human summary. *)
