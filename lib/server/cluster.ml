(* The distributed HyperFile server (paper, Section 3.2), running on the
   discrete-event simulator.

   Every site runs the identical algorithm: it keeps a context per query
   (Q.id, Q.originator, Q.body, mark table, working set, result buffer)
   and processes work items with the local engine.  When a dereference
   reaches an object stored at another site, the query — not the object —
   is shipped there: a work message carrying (Q.id, Q.originator, Q.body,
   Q.size, O.id, O.start, O.iter#).  Results flow directly to the
   originating site; a site ships its buffered results whenever its
   working set drains, and the query context stays in place so later
   dereferences reuse it.  Termination detection is pluggable
   (functorized) — work messages carry a detector tag and detectors may
   exchange control messages, which piggyback on result messages when
   they travel to the originator anyway.

   Work messages batch: remote dereferences pass through a per-site,
   per-destination buffer (shared across concurrent queries) and one
   wire message ships every buffered item for a destination, grouped by
   query with one header and one credit split per group.  The flush
   policy is [config.batch]: at K buffered items for a destination the
   flushing task ships them inline; whatever remains ships when the
   site's task queue runs dry (end of the local pump cycle).  A context
   never drains while it still owns buffered items, so termination is
   detected only after every buffered item is on the wire.  [Flush_at 1]
   reproduces the unbatched per-item protocol exactly — bytes, timing
   and message counts.

   Timing model: each site is a serial CPU.  Site work is queued as
   tasks; a task computes its outcome and duration when it starts, and
   its effects (message deliveries, new work) apply when it completes.
   Costs come from [Hf_sim.Costs] (default: the paper's measured basic
   times). *)

module Oid = Hf_data.Oid

type result_mode =
  | Ship_items
  | Ship_counts (* the distributed-set optimisation of Section 5 *)
  | Ship_threshold of int
      (* the paper's refinement: ship members for small batches, counts
         once a site's batch reaches the threshold *)

type mark_scope =
  | Local_marks (* the paper's choice: per-site tables, duplicate messages possible *)
  | Global_marks (* ablation: an oracle global table suppresses duplicate sends *)

type exec_mode =
  | Exec_ship (* the paper's protocol: work items follow the pointer chain *)
  | Exec_scatter
      (* force single-round scatter-gather whenever the program is
         eligible (no finite iterators); ineligible queries ship *)
  | Exec_auto
      (* cost-based: [Hf_query.Plan.decide] picks the cheaper mode per
         query from seed placement, learned Bloom summaries and the
         origin store's locality (doc/execution_modes.md) *)

type config = {
  costs : Hf_sim.Costs.t;
  result_mode : result_mode;
  mark_scope : mark_scope;
  poll_window : float; (* stop detector polling this long after query start *)
  jitter : float;
      (* extra transit, uniform in [0, jitter], drawn per message from a
         seeded PRNG — makes message reordering reachable in tests while
         keeping runs reproducible *)
  loss : float;
      (* per-message drop probability (work, result and control messages
         alike) — failure injection; queries then typically time out
         with partial results *)
  jitter_seed : int;
  batch : Hf_proto.Batch.flush_policy;
      (* per-destination work-message batching: [Flush_at 1] ships one
         message per item (the paper's protocol); larger K coalesces
         same-destination items — across concurrent queries — into one
         message, amortizing the ~50 ms per-message overhead *)
  reliability : Hf_proto.Reliable.config option;
      (* [Some _] sequences every protocol message per destination,
         piggybacks cumulative acks, retransmits on ack timeout (timers
         ride the event queue, in virtual time) and dedups redelivery
         at the receiver, so lossy runs return the lossless answer;
         when the retry cap declares a peer unreachable its credit is
         reclaimed and the query finishes with the peer listed in
         [outcome.unreachable_sites].  [None] (the default) is the
         bare paper protocol: a drop loses the message, and its credit,
         for good. *)
  cache : Hf_index.Remote_cache.config option;
      (* [Some _] enables the cross-site acceleration layer (DESIGN.md
         §4g): before the first ship to a destination, a query
         validates the destination's store version (items wait parked,
         their credit unsplit); at a validated version, verdicts cached
         from earlier traffic answer items locally without splitting
         credit, and the destination's Bloom tuple summary prunes
         ships that provably die on arrival.  Entries age in virtual
         time per [ttl].  [None] (the default) ships every item. *)
  admission : Sched.config;
      (* per-origin admission gate (DESIGN.md §4h): at most
         [in_flight_cap] queries from one origin run at once, excess
         submissions wait in a fair queue bounded by [max_queued].
         [Sched.unlimited] (the default) admits everything immediately —
         the pre-concurrency behavior. *)
  exec : exec_mode;
      (* execution-mode selection; [Exec_ship] (the default) is the
         paper's protocol, byte-identical to the pre-planner code *)
  bloofi : bool;
      (* [true] (the default): each origin maintains a Bloofi tree
         (Hf_index.Bloofi) over the per-peer Bloom summaries and the
         planner predicts the touched-site set from one root-to-leaf
         descent instead of probing N flat filters; distributed
         re-seeding ([run_query_on_distributed]) consults the same tree
         before broadcasting.  [false] is the flat per-peer scan — the
         two must answer identically (the differential cube checks
         byte-identical results), the tree just answers in
         O(d·log_d N) touches on selective programs. *)
}

let default_config =
  { costs = Hf_sim.Costs.paper; result_mode = Ship_items; mark_scope = Local_marks;
    poll_window = 3600.0; jitter = 0.0; loss = 0.0; jitter_seed = 1;
    batch = Hf_proto.Batch.unbatched; reliability = None; cache = None;
    admission = Sched.unlimited; exec = Exec_ship; bloofi = true }

type outcome = {
  results : Oid.t list; (* in arrival order at the originator *)
  result_set : Oid.Set.t;
  bindings : (string * Hf_data.Value.t list) list;
  counts : (int * int) list; (* (site, local result count), Ship_counts mode *)
  terminated : bool;
  unreachable_sites : int list;
      (* peers the reliability layer gave up on; non-empty + terminated
         means the answer is explicitly partial rather than hung *)
  response_time : float; (* virtual seconds from issue to detected termination *)
  queue_wait_s : float;
      (* virtual seconds the submission waited at the admission gate
         before seeding; 0 when admission was immediate *)
  metrics : Metrics.t;
  engine_stats : Hf_engine.Stats.t; (* merged over sites *)
  mode : Hf_query.Plan.mode; (* execution mode that actually ran *)
  plan_decision : Hf_query.Plan.decision option;
      (* the planner's full cost comparison; [None] under [Exec_ship],
         where the planner never runs *)
}

module Make (D : Hf_termination.Detector.S) = struct
  type work_source = Seeded | From_network

  type context = {
    query : Hf_proto.Message.query_id;
    plan : Hf_engine.Plan.t;
    origin : int;
    span : int;
        (* this site's evaluation span for the query; parented on the
           work message that first reached the site (or the query root
           at the originator) *)
    marks : Hf_engine.Mark_table.t; (* shared across sites under Global_marks *)
    work : (Hf_engine.Work_item.t * work_source) Hf_util.Deque.t;
    detector : D.t;
    stats : Hf_engine.Stats.t;
    bindings : (string, Hf_data.Value.t list) Hashtbl.t; (* emission buffer *)
    mutable result_buffer : Oid.t list; (* pending shipment, newest first *)
    mutable local_result_set : Oid.Set.t; (* all results found at this site *)
    mutable in_flight : int; (* items popped from W whose task has not completed *)
    (* Cache layer (config.cache): per-destination validation state.
       Items headed for an unvalidated destination wait in [parked] —
       their credit unsplit, so [parked_count] must hold the drain
       condition open — until a [Cache_version] reply (or a give-up)
       resolves them. *)
    validated : (int, int) Hashtbl.t; (* dst -> store version vouched this query *)
    validating : (int, unit) Hashtbl.t; (* dst with a Cache_validate in flight *)
    parked : (int, Hf_engine.Work_item.t list) Hashtbl.t; (* dst -> items, newest first *)
    mutable parked_count : int;
    mutable answers : (Hf_engine.Work_item.t * bool) list;
        (* cacheable verdicts computed here for the originator's cache,
           newest first; flushed (credit-free) at drain *)
    mutable answers_version : int; (* store version the answers were computed at *)
    mutable scatter : Hf_engine.Scatter.Stitch.t option;
        (* scatter-gather merge state; [Some _] only at the originator
           of a query running in scatter mode.  The drain condition
           stays open while gathers are outstanding. *)
  }

  type open_query = {
    id : Hf_proto.Message.query_id;
    program : Hf_query.Program.t;
    start_time : float;
    span : int; (* root span: submit to detected termination *)
    metrics : Metrics.t;
    mutable final_results : Oid.t list; (* newest first *)
    mutable final_set : Oid.Set.t;
    final_bindings : (string, Hf_data.Value.t list) Hashtbl.t;
    mutable counts : (int * int) list;
    mutable terminated : bool;
    mutable unreachable_sites : int list;
        (* peers the reliability layer gave up on for this query *)
    mutable finish_time : float;
    mutable admitted : bool;
        (* past the admission gate; false while queued behind the
           in-flight cap (and forever for rejected/cancelled-queued) *)
    mutable queue_wait_s : float;
        (* time spent queued at the admission gate before seeding *)
    mutable cancelled : bool;
        (* cancelled by the caller: contexts evicted, late messages
           dropped, detector state discarded *)
    mutable captured : (Hf_engine.Stats.t * int) option;
        (* (merged engine stats, originator's local result count),
           snapshotted at termination — the per-site contexts are
           evicted then, so the outcome can no longer read them live *)
    mutable mode : Hf_query.Plan.mode; (* execution mode that ran *)
    mutable decision : Hf_query.Plan.decision option; (* planner output, if it ran *)
  }

  type task = unit -> float * (unit -> unit)

  (* A work message carries whole per-query groups: the query header and
     detector tag (one credit split) cover every item in the group. *)
  (* Every message carries the sender-side span id that covers its
     trip (0 when tracing is off), so receiver-side spans can parent
     on the originating site's — the cross-site causal edge. *)
  type message =
    | Work of {
        groups : (Hf_proto.Message.query_id * Hf_engine.Work_item.t list * D.tag) list;
        src : int;
        span : int;
      }
    | Results of {
        query : Hf_proto.Message.query_id;
        payload : Hf_proto.Message.result_payload;
        bindings : (string * Hf_data.Value.t list) list;
        piggybacked : (int * D.control) list; (* controls riding along *)
        src : int;
        span : int;
      }
    | Control of {
        query : Hf_proto.Message.query_id;
        payload : D.control;
        src : int;
        span : int;
      }
    | Seed_from of {
        query : Hf_proto.Message.query_id;
        from : Hf_proto.Message.query_id;
        tag : D.tag;
        src : int;
        span : int;
      }
    | Ack of { src : int }
        (* standalone cumulative ack: transport-level, consumed at
           delivery (the value rides alongside, not inside) — never
           reaches a site's task queue *)
    | Unreachable of {
        query : Hf_proto.Message.query_id;
        dead : int;
        src : int;
        span : int;
      }
        (* retransmission to [dead] gave up: the originator's answer
           will be partial *)
    | Cache_validate of { query : Hf_proto.Message.query_id; src : int; span : int }
        (* "what store version are you at?" — sent before the first
           ship to a destination; carries no credit *)
    | Cache_version of {
        query : Hf_proto.Message.query_id;
        site : int; (* the answering site *)
        version : int;
        epoch : int; (* the answering site's summary-recompute counter *)
        summary : Hf_index.Bloom.t option;
            (* Bloom tuple summary, piggybacked only when the asker has
               not been told this version's summary yet *)
        src : int;
        span : int;
      }
    | Cache_answers of {
        query : Hf_proto.Message.query_id;
        src : int;
        version : int; (* the answering site's store version *)
        answers : (Hf_engine.Work_item.t * bool) list;
        span : int;
      }
        (* opportunistic fill: verdicts this site computed, shipped to
           the originator's cache at drain; credit-free, so a loss only
           costs future hits *)
    | Scatter of {
        query : Hf_proto.Message.query_id;
        roots : Oid.t list; (* seed oids located at the receiver *)
        tag : D.tag; (* one credit split per contacted site *)
        src : int;
        span : int;
      }
        (* scatter-gather outbound half: the receiver evaluates its
           whole speculation domain and answers with one [Gather] *)
    | Gather of {
        query : Hf_proto.Message.query_id;
        nodes : Hf_engine.Scatter.node list; (* productive nodes only *)
        piggybacked : (int * D.control) list;
            (* every control the scattered site's drain produced for
               the originator rides here, so detector credit can never
               overtake the nodes it covers *)
        src : int;
        span : int;
      }

  (* What the reliability layer retains for retransmission: the message
     plus enough context to repeat the physical send. *)
  type shipment = { label : string; transit : float; msg : message }

  type link = {
    rel : shipment Hf_proto.Reliable.t;
    mutable armed : float option;
        (* virtual time of the earliest scheduled poll event, so timer
           events are not scheduled twice for the same deadline *)
  }

  type site = {
    id : int;
    store : Hf_data.Store.t;
    contexts : (Hf_proto.Message.query_id, context) Hashtbl.t;
    retained : (Hf_proto.Message.query_id, Oid.Set.t) Hashtbl.t;
        (* local result portions of terminated queries, kept (until
           [forget_query]) so [run_query_on_distributed] can still seed
           from them after the contexts are evicted *)
    tasks : task Sched.Rr.t;
        (* the serial site CPU's run queue: round-robin across tenants
           (tenant = query origin), exact FIFO with a single tenant *)
    mutable busy : bool;
    mutable alive : bool;
    outgoing : (Hf_proto.Message.query_id * Hf_engine.Work_item.t) Hf_proto.Batch.t;
        (* per-destination buffer of remote work awaiting shipment;
           shared by every query on the site so concurrent traffic to
           the same destination coalesces *)
    out_pending : (Hf_proto.Message.query_id, int) Hashtbl.t;
        (* buffered-item count per query: a context must not drain while
           it still owns buffered items, or the detector would see its
           work as finished before the items' credit was split *)
    links : link array;
        (* per-peer reliable-delivery state (index = peer site id);
           dormant unless [config.reliability] is set *)
    cache : Hf_index.Remote_cache.t option;
        (* remote-answer cache ([Some _] iff [config.cache] is set);
           filled only at query originators, consulted on every ship *)
    mutable summary_memo : (int * Hf_index.Bloom.t) option;
        (* this site's own Bloom tuple summary, memoized per store
           version; rebuilt lazily when a Cache_validate arrives after
           a version bump *)
    summary_told : (int, int) Hashtbl.t;
        (* peer -> store version whose summary we last sent them, so
           repeat validations skip the summary bytes *)
    summaries : (int, int * Hf_index.Bloom.t) Hashtbl.t;
        (* peer -> (version, summary) learned from Cache_version
           replies; prune checks require the validated version *)
    mutable summary_epoch : int;
        (* monotonic count of summary recomputes at this site; rides
           every Cache_version reply so receivers can spot a restarted
           lineage (an epoch regression) and drop what they learned *)
    peer_epochs : (int, int) Hashtbl.t;
        (* peer -> last summary epoch seen from it *)
    bloofi : Hf_index.Bloofi.t;
        (* this origin's Bloofi tree over peer summaries (config.bloofi);
           leaves track [summaries] plus the lazy [summary_for] fallback *)
    bloofi_src : (int, Hf_index.Bloom.t) Hashtbl.t;
        (* peer -> the exact filter currently installed as its leaf, so
           maintenance can skip physically-unchanged summaries *)
    mutable locality_memo : (int * float) option;
        (* (store version, fraction of this store's pointer tuples that
           stay on-site) — the planner's honest locality signal,
           rebuilt lazily on version bumps *)
  }

  type t = {
    sim : Hf_sim.Sim.t;
    sites : site array;
    config : config;
    locate : Oid.t -> int;
    trace : Hf_sim.Trace.t option;
    tracer : Hf_obs.Tracer.t;
    registry : Hf_obs.Registry.t; (* cluster-wide metrics *)
    work_batch_items : Hf_obs.Histogram.t; (* items per shipped work message *)
    ack_latency : Hf_obs.Histogram.t; (* seconds from first send to cumulative ack *)
    queue_wait : Hf_obs.Histogram.t;
        (* virtual seconds a task spends in a site's run queue before
           the serial CPU starts it — the queueing half of response
           time, previously dark (DESIGN.md §4i) *)
    admission_wait : Hf_obs.Histogram.t; (* submit-to-seed gate wait, virtual s *)
    bloofi_depth : Hf_obs.Histogram.t;
        (* deepest level reached per Bloofi planner descent — sublinear
           probe cost made visible (hf.index.bloofi_descent_depth) *)
    mutable standalone_acks : int; (* acks that found no reverse traffic to ride *)
    mutable total_retransmits : int;
    mutable total_dup_drops : int;
    open_queries : (Hf_proto.Message.query_id, open_query) Hashtbl.t;
    mutable next_serial : int;
    jitter_prng : Hf_util.Prng.t;
    gates : (Hf_proto.Message.query_id * (unit -> unit)) Sched.t array;
        (* per-origin admission gates; a queued entry is the query id
           plus the thunk that seeds it once a slot frees *)
  }

  let create ?(config = default_config) ?locate ?trace ?(tracer = Hf_obs.Tracer.noop)
      ~n_sites () =
    if n_sites <= 0 then invalid_arg "Cluster.create: n_sites must be positive";
    (match config.reliability with
     | Some rel -> Hf_proto.Reliable.validate rel
     | None -> ());
    (match config.cache with
     | Some cache -> Hf_index.Remote_cache.validate cache
     | None -> ());
    Sched.validate config.admission;
    let rel_config =
      Option.value config.reliability ~default:Hf_proto.Reliable.default
    in
    let sites =
      Array.init n_sites (fun id ->
          {
            id;
            store = Hf_data.Store.create ~site:id;
            contexts = Hashtbl.create 8;
            retained = Hashtbl.create 8;
            tasks = Sched.Rr.create ();
            busy = false;
            alive = true;
            outgoing = Hf_proto.Batch.create config.batch;
            out_pending = Hashtbl.create 4;
            links =
              Array.init n_sites (fun _ ->
                  { rel = Hf_proto.Reliable.create rel_config; armed = None });
            cache = Option.map Hf_index.Remote_cache.create config.cache;
            summary_memo = None;
            summary_told = Hashtbl.create 4;
            summaries = Hashtbl.create 4;
            summary_epoch = 0;
            peer_epochs = Hashtbl.create 4;
            bloofi = Hf_index.Bloofi.create ();
            bloofi_src = Hashtbl.create 4;
            locality_memo = None;
          })
    in
    let locate = match locate with Some f -> f | None -> Oid.birth_site in
    let sim = Hf_sim.Sim.create () in
    (* Spans are stamped in virtual time so trace durations line up
       with the simulated response times. *)
    Hf_obs.Tracer.set_clock tracer (fun () -> Hf_sim.Sim.now sim);
    let registry = Hf_obs.Registry.create () in
    let work_batch_items = Hf_obs.Registry.histogram registry "hf.server.work_batch_items" in
    let ack_latency = Hf_obs.Registry.histogram registry "hf.server.ack_latency_s" in
    let queue_wait = Hf_obs.Registry.histogram registry "hf.server.queue_wait_s" in
    let admission_wait = Hf_obs.Registry.histogram registry "hf.server.admission_wait_s" in
    let bloofi_depth = Hf_obs.Registry.histogram registry "hf.index.bloofi_descent_depth" in
    let t =
      {
        sim;
        sites;
        config;
        locate;
        trace;
        tracer;
        registry;
        work_batch_items;
        ack_latency;
        queue_wait;
        admission_wait;
        bloofi_depth;
        standalone_acks = 0;
        total_retransmits = 0;
        total_dup_drops = 0;
        open_queries = Hashtbl.create 8;
        next_serial = 0;
        jitter_prng = Hf_util.Prng.create config.jitter_seed;
        gates = Array.init n_sites (fun _ -> Sched.create config.admission);
      }
    in
    Hf_obs.Registry.register_counter registry "hf.server.standalone_acks" (fun () ->
        t.standalone_acks);
    Hf_obs.Registry.register_counter registry "hf.server.retransmits" (fun () ->
        t.total_retransmits);
    Hf_obs.Registry.register_counter registry "hf.server.dup_drops" (fun () ->
        t.total_dup_drops);
    (* Bloofi planner-index counters, summed across origins (each site
       maintains its own tree over what it learned about its peers). *)
    Hf_obs.Registry.register_counter registry "hf.index.bloofi_probes" (fun () ->
        Array.fold_left
          (fun acc site -> acc + Hf_index.Bloofi.probes_run site.bloofi)
          0 t.sites);
    Hf_obs.Registry.register_counter registry "hf.index.bloofi_pruned_sites" (fun () ->
        Array.fold_left
          (fun acc site -> acc + Hf_index.Bloofi.pruned_total site.bloofi)
          0 t.sites);
    Hf_obs.Registry.register_counter registry "hf.index.bloofi_rebuilds" (fun () ->
        Array.fold_left
          (fun acc site -> acc + Hf_index.Bloofi.rebuilds site.bloofi)
          0 t.sites);
    (* Live gauges over the scheduler's previously-dark state
       (DESIGN.md §4i): run-queue depth and tenancy, admission gate
       occupancy, context and cache population.  The sim is
       single-threaded, so plain reads are consistent. *)
    Hf_obs.Registry.register_gauge registry "hf.server.tasks_queued" (fun () ->
        float_of_int
          (Array.fold_left (fun acc site -> acc + Sched.Rr.length site.tasks) 0 t.sites));
    Hf_obs.Registry.register_gauge registry "hf.server.task_tenants" (fun () ->
        float_of_int
          (Array.fold_left (fun acc site -> acc + Sched.Rr.tenants site.tasks) 0 t.sites));
    Hf_obs.Registry.register_gauge registry "hf.server.queries_running" (fun () ->
        float_of_int
          (Array.fold_left (fun acc gate -> acc + Sched.running gate) 0 t.gates));
    Hf_obs.Registry.register_gauge registry "hf.server.queries_queued" (fun () ->
        float_of_int (Array.fold_left (fun acc gate -> acc + Sched.queued gate) 0 t.gates));
    Hf_obs.Registry.register_gauge registry "hf.server.sched_tenants" (fun () ->
        float_of_int
          (Array.fold_left (fun acc gate -> acc + Sched.waiting_tenants gate) 0 t.gates));
    Hf_obs.Registry.register_gauge registry "hf.server.contexts_live" (fun () ->
        float_of_int
          (Array.fold_left (fun acc site -> acc + Hashtbl.length site.contexts) 0 t.sites));
    Hf_obs.Registry.register_gauge registry "hf.server.cache_entries" (fun () ->
        float_of_int
          (Array.fold_left
             (fun acc site ->
               match site.cache with
               | None -> acc
               | Some cache -> acc + Hf_index.Remote_cache.length cache)
             0 t.sites));
    Hf_obs.Tracer.register tracer registry ~prefix:"hf.server";
    t

  let n_sites t = Array.length t.sites

  let store t site = t.sites.(site).store

  let sim t = t.sim

  let tracer t = t.tracer

  let registry t = t.registry

  let qname query = Fmt.str "%a" Hf_proto.Message.pp_query_id query

  let kill_site t site = t.sites.(site).alive <- false

  let revive_site t site = t.sites.(site).alive <- true

  let record t site kind detail =
    match t.trace with
    | None -> ()
    | Some trace ->
      Hf_sim.Trace.record trace ~time:(Hf_sim.Sim.now t.sim) ~site ~kind ~detail

  (* --- byte-size estimates (the real codec is exercised separately in
     tests; the simulator only needs consistent accounting) --- *)

  (* One batch group ships the program + query header + credit once,
     then per-item (oid, start, iters).  A single-item group costs
     exactly what the unbatched per-item work message did. *)
  let batch_header_bytes program =
    Hf_query.Program.byte_size program + 8 (* query id *) + 4 (* credit/tag *)

  let batch_item_bytes item =
    13 (* oid *) + 4 (* start *) + (4 * Array.length (Hf_engine.Work_item.iters item))

  let batch_group_bytes program items =
    batch_header_bytes program
    + List.fold_left (fun acc item -> acc + batch_item_bytes item) 0 items

  let bindings_bytes bindings =
    List.fold_left
      (fun acc (target, values) ->
        acc + String.length target
        + List.fold_left (fun acc v -> acc + Hf_data.Value.byte_size v) 4 values)
      0 bindings

  (* Scatter ships the program header plus the receiver's seed roots;
     a gather ships its productive nodes — oid, start, passed flag,
     visited indices, spawn edges and emitted bindings. *)
  let scatter_message_bytes program roots =
    batch_header_bytes program + (13 * List.length roots)

  let gather_node_bytes (node : Hf_engine.Scatter.node) =
    13 + 4 + 1
    + (4 * List.length node.visited)
    + (17 * List.length node.spawns)
    + bindings_bytes node.bindings

  let gather_message_bytes nodes =
    8 + 4 + List.fold_left (fun acc node -> acc + gather_node_bytes node) 0 nodes

  let result_message_bytes payload bindings =
    let payload_bytes =
      match (payload : Hf_proto.Message.result_payload) with
      | Items items -> 13 * List.length items
      | Count _ -> 4
    in
    8 + 4 + payload_bytes + bindings_bytes bindings

  (* --- contexts --- *)

  (* A cancelled query is invisible to the message paths: its handle
     still answers [outcome], but stray traffic must not revive it. *)
  let find_open t query =
    match Hashtbl.find_opt t.open_queries query with
    | Some oq when not oq.cancelled -> Some oq
    | Some _ | None -> None

  (* [cause] is the span id of the work message (or other event) that
     first brought the query to this site; the fresh context's
     evaluation span parents on it, falling back to the query root. *)
  let context_of t ?(cause = 0) site query =
    match Hashtbl.find_opt site.contexts query with
    | Some ctx -> Some ctx
    | None -> (
        (* First contact: set up the local context from the open query's
           program.  (On a real network the program rides in the message;
           in the simulator we read it from the registry — the byte
           accounting above charges for it on every work message, as the
           real protocol does.) *)
        match find_open t query with
        | None -> None
        | Some oq when oq.terminated ->
          (* Terminal status evicts the per-site contexts; a message
             that straggles in afterwards (duplicate delivery, late
             control) must not resurrect one.  The detector has already
             converged, so dropping the straggler is sound. *)
          None
        | Some oq ->
          let marks =
            match t.config.mark_scope with
            | Local_marks -> Hf_engine.Mark_table.create ()
            | Global_marks -> (
                (* share the originator's table *)
                match Hashtbl.find_opt t.sites.(query.originator).contexts query with
                | Some origin_ctx -> origin_ctx.marks
                | None -> Hf_engine.Mark_table.create ())
          in
          let parent = if cause <> 0 then cause else oq.span in
          let span =
            Hf_obs.Tracer.start t.tracer ~parent ~query:(qname query) ~site:site.id
              ~phase:Hf_obs.Span.Eval "site-eval"
          in
          let ctx =
            {
              query;
              plan = Hf_engine.Plan.make oq.program;
              origin = query.originator;
              span;
              marks;
              work = Hf_util.Deque.create ();
              detector =
                D.create ~n_sites:(n_sites t) ~origin:query.originator ~self:site.id;
              stats = Hf_engine.Stats.create ();
              bindings = Hashtbl.create 4;
              result_buffer = [];
              local_result_set = Oid.Set.empty;
              in_flight = 0;
              validated = Hashtbl.create 4;
              validating = Hashtbl.create 4;
              parked = Hashtbl.create 4;
              parked_count = 0;
              answers = [];
              answers_version = 0;
              scatter = None;
            }
          in
          Hashtbl.replace site.contexts query ctx;
          Some ctx)

  let merged_stats t query =
    Array.fold_left
      (fun acc site ->
        match Hashtbl.find_opt site.contexts query with
        | None -> acc
        | Some ctx -> Hf_engine.Stats.merge acc ctx.stats)
      (Hf_engine.Stats.create ()) t.sites

  (* --- result handling at the originator --- *)

  let merge_bindings table extra =
    List.iter
      (fun (target, values) ->
        let existing = match Hashtbl.find_opt table target with None -> [] | Some v -> v in
        Hashtbl.replace table target (existing @ values))
      extra

  (* Free an admission slot; if a submission was queued behind the cap
     it takes over the slot and its seeding thunk runs now. *)
  let release_gate t origin =
    match Sched.release t.gates.(origin) with
    | Some (query, seed) ->
      (match Hashtbl.find_opt t.open_queries query with
       | Some oq -> oq.admitted <- true
       | None -> ());
      seed ()
    | None -> ()

  (* Evict the query's per-site state.  Contexts used to stay resident
     forever after terminal status — the leak this PR fixes; every
     outcome-visible bit is snapshotted into the open query first, and
     each site's local result portion moves to [retained] so
     [run_query_on_distributed] can still seed from it. *)
  let evict_query t (oq : open_query) =
    let stats = merged_stats t oq.id in
    let origin_local =
      match Hashtbl.find_opt t.sites.(oq.id.originator).contexts oq.id with
      | Some ctx -> Oid.Set.cardinal ctx.local_result_set
      | None -> 0
    in
    oq.captured <- Some (stats, origin_local);
    Array.iter
      (fun site ->
        match Hashtbl.find_opt site.contexts oq.id with
        | Some ctx ->
          Hf_obs.Tracer.finish t.tracer ctx.span;
          Hashtbl.replace site.retained oq.id ctx.local_result_set;
          Hashtbl.remove site.contexts oq.id;
          Hashtbl.remove site.out_pending oq.id
        | None -> ())
      t.sites;
    Hf_obs.Tracer.finish t.tracer oq.span;
    if oq.admitted then release_gate t oq.id.originator

  let finish_query t oq =
    if not oq.terminated then begin
      oq.terminated <- true;
      oq.finish_time <- Hf_sim.Sim.now t.sim;
      record t oq.id.originator "terminate" (Fmt.str "%a" Hf_proto.Message.pp_query_id oq.id);
      evict_query t oq
    end

  let handle_detector_result t oq (controls, terminated) send_control =
    List.iter send_control controls;
    if terminated then finish_query t oq

  (* --- reliability bookkeeping --- *)

  (* The query a message is charged to, for metric attribution; acks
     belong to a link, not a query. *)
  let message_query = function
    | Work { groups = (query, _, _) :: _; _ } -> Some query
    | Work { groups = []; _ } -> None
    | Results { query; _ } -> Some query
    | Control { query; _ } -> Some query
    | Seed_from { query; _ } -> Some query
    | Unreachable { query; _ } -> Some query
    | Cache_validate { query; _ } -> Some query
    | Cache_version { query; _ } -> Some query
    | Cache_answers { query; _ } -> Some query
    | Scatter { query; _ } -> Some query
    | Gather { query; _ } -> Some query
    | Ack _ -> None

  (* Scheduling tenant for a delivered message's handler task: the
     originating query's origin.  Acks never reach the task queue, so
     the [-1] fallback is only defensive. *)
  let tenant_of_message m =
    match message_query m with
    | Some q -> q.Hf_proto.Message.originator
    | None -> -1

  let mark_unreachable t oq dead =
    if not (List.mem dead oq.unreachable_sites) then begin
      oq.unreachable_sites <- dead :: oq.unreachable_sites;
      record t oq.id.Hf_proto.Message.originator "unreachable"
        (Fmt.str "site %d (%s)" dead (qname oq.id))
    end

  (* --- outgoing-batch bookkeeping --- *)

  let pending_for site query =
    match Hashtbl.find_opt site.out_pending query with Some n -> n | None -> 0

  let adjust_pending site query delta =
    let n = pending_for site query + delta in
    if n <= 0 then Hashtbl.remove site.out_pending query
    else Hashtbl.replace site.out_pending query n

  (* Group a flushed (query, item) run by query, preserving
     first-appearance order, so each query's header ships once. *)
  let group_entries entries =
    let rec add q wi = function
      | [] -> [ (q, [ wi ]) ]
      | (q', items) :: rest when Hf_proto.Message.equal_query_id q q' ->
        (q', wi :: items) :: rest
      | g :: rest -> g :: add q wi rest
    in
    List.fold_left (fun groups (q, wi) -> add q wi groups) [] entries
    |> List.map (fun (q, items) -> (q, List.rev items))

  let batch_total groups =
    List.fold_left (fun acc (_, items, _) -> acc + List.length items) 0 groups

  (* --- serial site CPU, message delivery and sending --- *)

  (* Task starts are deferred to a fresh simulator event so that a task
     completion finishes all of its effects (pushing spawned work,
     checking the drain condition) before the next task pops the working
     set — same-timestamp events run FIFO. *)
  let rec pump t site =
    if site.alive && not site.busy then begin
      match Sched.Rr.pop site.tasks with
      | None ->
        (* End of the local pump cycle: the site ran out of tasks, so
           ship whatever the batcher still buffers.  (With K = 1 the
           buffer is always empty — every push flushes immediately.) *)
        flush_idle t site
      | Some task ->
        site.busy <- true;
        Hf_sim.Sim.schedule t.sim ~delay:0.0 (fun () ->
            if site.alive then begin
              let duration, complete = task () in
              Hf_sim.Sim.schedule t.sim ~delay:duration (fun () ->
                  site.busy <- false;
                  if site.alive then complete ();
                  pump t site)
            end
            else site.busy <- false)
    end

  (* [tenant] is the origin of the query the task serves (the issue's
     multi-tenant notion); the site CPU round-robins across tenants so
     one origin's burst cannot starve another's queries. *)
  and enqueue t site ~tenant task =
    let queued_at = Hf_sim.Sim.now t.sim in
    let task () =
      (* run-queue wait: how long the serial CPU left this task parked *)
      Hf_obs.Histogram.observe t.queue_wait (Hf_sim.Sim.now t.sim -. queued_at);
      task ()
    in
    Sched.Rr.push site.tasks ~tenant task;
    pump t site

  (* Turn a flushed per-destination run into sendable groups.  Called
     synchronously at flush-decision time: [D.on_send_work] splits the
     sender's credit here — once per group, not per item — so a context
     can never look drained while its buffered items still carry
     unsplit credit. *)
  and prepare_batch t site ~dst entries =
    let groups =
      group_entries entries
      |> List.filter_map (fun (query, items) ->
             adjust_pending site query (-List.length items);
             match context_of t site query with
             | Some ctx -> Some (ctx, items, D.on_send_work ctx.detector ~dst)
             | None -> None)
    in
    (dst, groups)

  (* Metrics, trace and delivery of a prepared batch; the sender-CPU
     cost is charged by the caller (inside the task that flushed). *)
  and send_prepared t site (dst, groups) =
    match groups with
    | [] -> ()
    | (ctx0, _, _) :: _ ->
      let total = batch_total groups in
      let oq0 = find_open t ctx0.query in
      (match oq0 with
       | Some oq ->
         oq.metrics.Metrics.work_messages <- oq.metrics.Metrics.work_messages + 1;
         if total >= 2 then
           oq.metrics.Metrics.work_batches <- oq.metrics.Metrics.work_batches + 1
       | None -> ());
      List.iter
        (fun (ctx, items, _) ->
          match find_open t ctx.query with
          | Some oq ->
            let program = Hf_engine.Plan.program ctx.plan in
            oq.metrics.Metrics.work_items <-
              oq.metrics.Metrics.work_items + List.length items;
            oq.metrics.Metrics.work_bytes <-
              oq.metrics.Metrics.work_bytes + batch_group_bytes program items;
            oq.metrics.Metrics.batch_bytes_saved <-
              oq.metrics.Metrics.batch_bytes_saved
              + ((List.length items - 1) * batch_header_bytes program)
          | None -> ())
        groups;
      record t site.id "work-send" (Fmt.str "%d item(s) to %d" total dst);
      Hf_obs.Histogram.observe t.work_batch_items (float_of_int total);
      let span =
        Hf_obs.Tracer.start t.tracer ~parent:ctx0.span ~query:(qname ctx0.query)
          ~site:site.id ~phase:Hf_obs.Span.Ship
          (Fmt.str "work->%d" dst)
      in
      Hf_obs.Tracer.set_detail t.tracer span (Fmt.str "%d item(s)" total);
      deliver t ~src:site.id ~oq:oq0 ~label:"work" ~span
        ~transit:(Hf_sim.Costs.batch_transit t.config.costs ~items:total)
        ~dst
        (Work
           { groups = List.map (fun (ctx, items, tag) -> (ctx.query, items, tag)) groups;
             src = site.id;
             span;
           })
        (fun dsite message -> handle_message t dsite message)

  (* Ship every buffered batch; runs when the site's task queue empties
     and is a no-op with nothing buffered.  Each flush is charged as a
     send task; its completion re-checks the drain condition of every
     query that had items aboard. *)
  and flush_idle t site =
    if Hf_proto.Batch.pending site.outgoing > 0 then
      List.iter
        (fun (dst, entries) ->
          match prepare_batch t site ~dst entries with
          | _, [] -> ()
          | (dst, ((ctx0, _, _) :: _ as groups)) as prepared ->
            enqueue t site ~tenant:ctx0.origin (fun () ->
                let cost =
                  Hf_sim.Costs.batch_send t.config.costs ~items:(batch_total groups)
                in
                (match find_open t ctx0.query with
                 | Some oq -> Metrics.add_busy oq.metrics site.id cost
                 | None -> ());
                ignore
                  (Hf_obs.Tracer.instant t.tracer ~parent:ctx0.span
                     ~detail:(Fmt.str "%d item(s)" (batch_total groups))
                     ~query:(qname ctx0.query) ~site:site.id ~phase:Hf_obs.Span.Flush
                     (Fmt.str "flush->%d" dst));
                ( cost,
                  fun () ->
                    send_prepared t site prepared;
                    List.iter (fun (ctx, _, _) -> maybe_drain t site ctx) groups )))
        (Hf_proto.Batch.flush_all site.outgoing)

  (* [span] (when non-zero) is the shipping span opened by the sender;
     it closes when the message lands — or immediately, tagged
     "dropped", when the lossy network eats it — so transit time shows
     up as the span's extent.

     With [config.reliability] unset this is the whole story: a drop
     loses the message (and any credit aboard) for good.  With it set,
     the message first passes through the per-peer reliable link —
     sequence assignment, retransmit timers on the event queue,
     receiver-side dedup — so a drop only costs a retransmission, and a
     peer that never acks is eventually declared unreachable and its
     messages' credit reclaimed ([abandon]). *)
  and deliver t ~src ~oq ~label ?(span = 0) ~transit ~dst message handler =
    match t.config.reliability with
    | None ->
      let dropped =
        t.config.loss > 0.0 && Hf_util.Prng.next_float t.jitter_prng < t.config.loss
      in
      if dropped then begin
        (match (oq : open_query option) with
         | Some oq ->
           oq.metrics.Metrics.dropped_messages <- oq.metrics.Metrics.dropped_messages + 1
         | None -> ());
        record t src "drop" (Fmt.str "%s to %d" label dst);
        Hf_obs.Tracer.finish ~detail:"dropped" t.tracer span
      end
      else begin
        let transit =
          if t.config.jitter <= 0.0 then transit
          else transit +. (Hf_util.Prng.next_float t.jitter_prng *. t.config.jitter)
        in
        Hf_sim.Sim.schedule t.sim ~delay:transit (fun () ->
            Hf_obs.Tracer.finish t.tracer span;
            let site = t.sites.(dst) in
            if site.alive then
              enqueue t site ~tenant:(tenant_of_message message) (fun () ->
                  handler site message))
      end
    | Some _ ->
      let link = t.sites.(src).links.(dst) in
      if Hf_proto.Reliable.unreachable link.rel then begin
        (* Fail fast: the retry cap already fired for this peer, so
           reclaim this message's credit immediately instead of queueing
           another doomed retransmission cycle. *)
        record t src "unreachable-drop" (Fmt.str "%s to %d" label dst);
        Hf_obs.Tracer.finish ~detail:"unreachable" t.tracer span;
        abandon t ~src ~dst { label; transit; msg = message }
      end
      else begin
        let seq =
          Hf_proto.Reliable.send link.rel ~now:(Hf_sim.Sim.now t.sim)
            { label; transit; msg = message }
        in
        transmit t ~src ~dst ~span ~label ~transit ~seq ~oq message;
        arm_link t ~site:src ~peer:dst
      end

  (* One physical transmission attempt (first send and retransmissions
     alike): draw the loss/jitter dice, piggyback the cumulative ack for
     the reverse direction, and on arrival run the transport half —
     ack processing and dedup — before the message is allowed to become
     site work.  Duplicates die here, which is what makes redelivery
     idempotent: [D.on_recv_work] (credit deposit) and evaluation run at
     most once per sequence number. *)
  and transmit t ~src ~dst ?(span = 0) ~label ~transit ~seq ~oq message =
    let ack = Hf_proto.Reliable.take_ack t.sites.(src).links.(dst).rel in
    let dropped =
      t.config.loss > 0.0 && Hf_util.Prng.next_float t.jitter_prng < t.config.loss
    in
    if dropped then begin
      (match (oq : open_query option) with
       | Some oq ->
         oq.metrics.Metrics.dropped_messages <- oq.metrics.Metrics.dropped_messages + 1
       | None -> ());
      record t src "drop" (Fmt.str "%s to %d" label dst);
      Hf_obs.Tracer.finish ~detail:"dropped" t.tracer span
    end
    else begin
      let transit =
        if t.config.jitter <= 0.0 then transit
        else transit +. (Hf_util.Prng.next_float t.jitter_prng *. t.config.jitter)
      in
      Hf_sim.Sim.schedule t.sim ~delay:transit (fun () ->
          Hf_obs.Tracer.finish t.tracer span;
          let dsite = t.sites.(dst) in
          if dsite.alive then begin
            let dlink = dsite.links.(src) in
            let now = Hf_sim.Sim.now t.sim in
            List.iter
              (fun latency -> Hf_obs.Histogram.observe t.ack_latency latency)
              (Hf_proto.Reliable.on_ack dlink.rel ~now ack);
            let fresh =
              if seq = 0 then true
              else
                match Hf_proto.Reliable.receive dlink.rel ~now ~seq with
                | `Fresh -> true
                | `Duplicate ->
                  t.total_dup_drops <- t.total_dup_drops + 1;
                  (match Option.bind (message_query message) (find_open t) with
                   | Some oq ->
                     oq.metrics.Metrics.dup_drops <- oq.metrics.Metrics.dup_drops + 1
                   | None -> ());
                  record t dst "dup-drop" (Fmt.str "%s seq=%d from %d" label seq src);
                  false
            in
            if seq > 0 then arm_link t ~site:dst ~peer:src;
            if fresh then
              match message with
              | Ack _ -> () (* transport-level: consumed by on_ack above *)
              | _ ->
                enqueue t dsite ~tenant:(tenant_of_message message) (fun () ->
                    handle_message t dsite message)
          end)
    end

  (* Schedule a poll event for the link's next deadline, unless one is
     already scheduled at or before it.  Spurious polls are harmless
     ([Reliable.poll] only fires what is actually due), so a stale
     event left behind by an earlier arm just re-checks and re-arms. *)
  and arm_link t ~site ~peer =
    let link = t.sites.(site).links.(peer) in
    match Hf_proto.Reliable.next_deadline link.rel with
    | None -> ()
    | Some deadline ->
      let covered = match link.armed with Some a -> a <= deadline | None -> false in
      if not covered then begin
        link.armed <- Some deadline;
        let time = Float.max deadline (Hf_sim.Sim.now t.sim) in
        Hf_sim.Sim.schedule_at t.sim ~time (fun () ->
            (match link.armed with
             | Some a when a <= time -> link.armed <- None
             | Some _ | None -> ());
            fire_link t ~site ~peer)
      end

  and fire_link t ~site ~peer =
    let s = t.sites.(site) in
    if s.alive then begin
      let link = s.links.(peer) in
      List.iter
        (function
          | Hf_proto.Reliable.Send_ack -> send_ack t ~src:site ~dst:peer
          | Hf_proto.Reliable.Retransmit entries ->
            List.iter
              (fun (seq, (sh : shipment)) ->
                let oq = Option.bind (message_query sh.msg) (find_open t) in
                t.total_retransmits <- t.total_retransmits + 1;
                (match oq with
                 | Some oq ->
                   oq.metrics.Metrics.retransmits <- oq.metrics.Metrics.retransmits + 1
                 | None -> ());
                record t site "retransmit" (Fmt.str "%s seq=%d to %d" sh.label seq peer);
                let span =
                  match oq with
                  | Some oq ->
                    Hf_obs.Tracer.start t.tracer ~parent:oq.span ~query:(qname oq.id)
                      ~site ~phase:Hf_obs.Span.Retransmit
                      (Fmt.str "retransmit->%d" peer)
                  | None -> 0
                in
                Hf_obs.Tracer.set_detail t.tracer span (Fmt.str "%s seq=%d" sh.label seq);
                transmit t ~src:site ~dst:peer ~span ~label:sh.label ~transit:sh.transit
                  ~seq ~oq sh.msg)
              entries
          | Hf_proto.Reliable.Give_up entries ->
            List.iter (fun (_, sh) -> abandon t ~src:site ~dst:peer sh) entries)
        (Hf_proto.Reliable.poll link.rel ~now:(Hf_sim.Sim.now t.sim));
      arm_link t ~site ~peer
    end

  (* Standalone cumulative ack: transport-level, so it bypasses the site
     CPU — the serial-CPU model charges for protocol work, not for the
     delivery substrate. *)
  and send_ack t ~src ~dst =
    t.standalone_acks <- t.standalone_acks + 1;
    record t src "ack-send" (Fmt.str "to %d" dst);
    transmit t ~src ~dst ~label:"ack" ~transit:t.config.costs.control_transit ~seq:0
      ~oq:None (Ack { src })

  (* The retry cap fired for [sh] (or the link was already dead at send
     time): the receiver provably never processed the message, so its
     credit can be reclaimed without risk of double-counting —
     [D.on_send_failed] unwinds the send exactly once per tag.  The
     originator learns its answer is partial via an [Unreachable]
     notice (or directly, when the giving-up site is the originator).
     Results/control messages carry no unwindable tag: their loss
     matters only when the destination — the originator — is itself
     gone, and then there is no one left to tell. *)
  and abandon t ~src ~dst (sh : shipment) =
    (match Option.bind (message_query sh.msg) (find_open t) with
     | Some oq -> oq.metrics.Metrics.give_ups <- oq.metrics.Metrics.give_ups + 1
     | None -> ());
    record t src "give-up" (Fmt.str "%s to %d" sh.label dst);
    let site = t.sites.(src) in
    let reclaim query tag =
      (match context_of t site query with
       | None -> ()
       | Some ctx ->
         let result = D.on_send_failed ctx.detector ~dst tag in
         (match find_open t query with
          | Some oq -> handle_detector_result t oq result (send_control t ~src ctx)
          | None ->
            let controls, _ = result in
            List.iter (send_control t ~src ctx) controls));
      notify_unreachable t ~src query ~dead:dst
    in
    match sh.msg with
    | Work { groups; _ } -> List.iter (fun (query, _, tag) -> reclaim query tag) groups
    | Seed_from { query; tag; _ } -> reclaim query tag
    | Scatter { query; tag; _ } -> (
        (* The scattered site provably never evaluated: reclaim the
           split credit, then close its slot in the stitch — the
           chains parked for it are lost exactly as classic shipping
           loses the items it sent to a dead site — and re-check the
           drain, which this site's gather no longer holds open. *)
        reclaim query tag;
        match context_of t site query with
        | None -> ()
        | Some ctx -> (
            match ctx.scatter with
            | None -> ()
            | Some stitch ->
              ignore (Hf_engine.Scatter.Stitch.site_dead stitch ~site:dst);
              maybe_drain t site ctx))
    | Cache_validate { query; _ } -> (
        (* The validation round trip died: un-park the waiting items and
           ship them the plain way — those sends fail fast against the
           dead link and their credit is reclaimed by the Work arm. *)
        match context_of t site query with
        | None -> ()
        | Some ctx ->
          release_parked t site ctx ~dst (fun wi acc -> push_remote t site ctx wi acc))
    | Results _ | Control _ | Unreachable _ | Ack _ | Cache_version _ | Cache_answers _
    | Gather _ ->
      (* a gather toward a dead originator has no one left to tell,
         like a result message *)
      ()

  and notify_unreachable t ~src query ~dead =
    match find_open t query with
    | None -> ()
    | Some oq ->
      if src = query.Hf_proto.Message.originator then mark_unreachable t oq dead
      else
        deliver t ~src ~oq:(Some oq) ~label:"unreachable"
          ~transit:t.config.costs.control_transit
          ~dst:query.Hf_proto.Message.originator
          (Unreachable { query; dead; src; span = 0 })
          (fun dsite message -> handle_message t dsite message)

  and send_control t ~src ctx (dst, payload) =
    let oq = find_open t ctx.query in
    let site = t.sites.(src) in
    enqueue t site ~tenant:ctx.origin (fun () ->
        (match oq with
         | Some oq ->
           oq.metrics.Metrics.control_messages <- oq.metrics.Metrics.control_messages + 1;
           Metrics.add_busy oq.metrics src t.config.costs.control_send
         | None -> ());
        record t src "control-send" (Fmt.str "to %d: %a" dst D.pp_control payload);
        ( t.config.costs.control_send,
          fun () ->
            let span =
              Hf_obs.Tracer.start t.tracer ~parent:ctx.span ~query:(qname ctx.query)
                ~site:src ~phase:Hf_obs.Span.Credit
                (Fmt.str "control->%d" dst)
            in
            Hf_obs.Tracer.set_detail t.tracer span (Fmt.str "%a" D.pp_control payload);
            deliver t ~src ~oq ~label:"control" ~span
              ~transit:t.config.costs.control_transit ~dst
              (Control { query = ctx.query; payload; src; span })
              (fun dsite message -> handle_message t dsite message) ))

  (* --- the cache layer (config.cache, DESIGN.md §4g) --- *)

  (* The plain path: count the item against the batcher and push it;
     a push that reaches the K threshold hands back the buffer, which
     the caller turns into a prepared batch. *)
  and push_remote t site ctx wi acc =
    let dst = t.locate (Hf_engine.Work_item.oid wi) in
    adjust_pending site ctx.query 1;
    match Hf_proto.Batch.push site.outgoing ~dst (ctx.query, wi) with
    | None -> acc
    | Some entries -> prepare_batch t site ~dst entries :: acc

  (* Apply a verdict obtained without shipping (cache hit): exactly the
     result bookkeeping [process_one] would have received back from the
     remote site, minus the network. *)
  and apply_verdict t site ctx wi passed =
    if passed then begin
      let oid = Hf_engine.Work_item.oid wi in
      if not (Oid.Set.mem oid ctx.local_result_set) then begin
        ctx.local_result_set <- Oid.Set.add oid ctx.local_result_set;
        if site.id = ctx.origin then (
          match find_open t ctx.query with
          | Some oq ->
            if not (Oid.Set.mem oid oq.final_set) then begin
              oq.final_set <- Oid.Set.add oid oq.final_set;
              oq.final_results <- oid :: oq.final_results
            end
          | None -> ())
        else ctx.result_buffer <- oid :: ctx.result_buffer
      end
    end

  (* Resolve one remote-bound item against a destination whose store
     version has been vouched for this query.  Order matters for
     credit safety: prune and hit happen before the item ever reaches
     the batcher, so their credit is never split. *)
  and resolve_item t site ctx ~dst ~version wi acc =
    let start = Hf_engine.Work_item.start wi in
    let iters = Hf_engine.Work_item.iters wi in
    let oq = find_open t ctx.query in
    let bump f = match oq with Some oq -> f oq.metrics | None -> () in
    let cache_note name =
      ignore
        (Hf_obs.Tracer.instant t.tracer ~parent:ctx.span ~query:(qname ctx.query)
           ~site:site.id ~phase:Hf_obs.Span.Cache
           ~detail:(Fmt.str "dst=%d v=%d" dst version)
           name)
    in
    let probes = Hf_index.Remote_cache.prune_probes ctx.plan ~start ~iters in
    let pruned =
      probes <> []
      && (match Hashtbl.find_opt site.summaries dst with
          | Some (v, summary) when v = version ->
            Hf_index.Remote_cache.summary_misses summary probes
          | Some _ | None -> false)
    in
    if pruned then begin
      (* The destination's summary proves the item's first filter cannot
         match there: no spawns, no results, no bindings — dropping it
         is indistinguishable from shipping it, and cheaper. *)
      bump (fun m -> m.Metrics.cache_prunes <- m.Metrics.cache_prunes + 1);
      record t site.id "cache-prune" (Fmt.str "ship to %d skipped (%s)" dst (qname ctx.query));
      cache_note "cache-prune";
      acc
    end
    else if Hf_index.Remote_cache.cacheable ctx.plan ~start ~iters then begin
      match site.cache with
      | None -> push_remote t site ctx wi acc
      | Some cache -> (
          let key =
            Hf_index.Remote_cache.entry_key ~dst ~plan:ctx.plan ~start ~iters
              ~oid:(Hf_engine.Work_item.oid wi)
          in
          match
            Hf_index.Remote_cache.lookup cache ~now:(Hf_sim.Sim.now t.sim) ~key ~version
          with
          | Hf_index.Remote_cache.Hit passed when t.config.result_mode = Ship_items ->
            bump (fun m -> m.Metrics.cache_hits <- m.Metrics.cache_hits + 1);
            record t site.id "cache-hit" (Fmt.str "ship to %d skipped (%s)" dst (qname ctx.query));
            cache_note "cache-hit";
            apply_verdict t site ctx wi passed;
            acc
          | Hf_index.Remote_cache.Hit _ ->
            (* Counting modes attribute results to the site that found
               them; serving locally would shift the attribution, so
               ship anyway. *)
            push_remote t site ctx wi acc
          | Hf_index.Remote_cache.Invalidated ->
            bump (fun m ->
                m.Metrics.cache_invalidations <- m.Metrics.cache_invalidations + 1;
                m.Metrics.cache_misses <- m.Metrics.cache_misses + 1);
            push_remote t site ctx wi acc
          | Hf_index.Remote_cache.Absent ->
            bump (fun m -> m.Metrics.cache_misses <- m.Metrics.cache_misses + 1);
            push_remote t site ctx wi acc)
    end
    else push_remote t site ctx wi acc

  (* Route one remote-bound item.  With caching off this is the plain
     batcher push; with it on, the first item for a destination parks
     the traffic behind a Cache_validate round trip, and items for a
     validated destination resolve (prune / hit / miss) immediately. *)
  and route_remote t site ctx wi acc =
    match site.cache with
    | None -> push_remote t site ctx wi acc
    | Some _ -> (
        let dst = t.locate (Hf_engine.Work_item.oid wi) in
        match Hashtbl.find_opt ctx.validated dst with
        | Some version -> resolve_item t site ctx ~dst ~version wi acc
        | None ->
          let waiting =
            match Hashtbl.find_opt ctx.parked dst with Some l -> l | None -> []
          in
          Hashtbl.replace ctx.parked dst (wi :: waiting);
          ctx.parked_count <- ctx.parked_count + 1;
          if not (Hashtbl.mem ctx.validating dst) then begin
            Hashtbl.replace ctx.validating dst ();
            send_cache_validate t site ctx ~dst
          end;
          acc)

  and send_cache_validate t site ctx ~dst =
    let oq = find_open t ctx.query in
    (match oq with
     | Some oq ->
       oq.metrics.Metrics.cache_validations <- oq.metrics.Metrics.cache_validations + 1
     | None -> ());
    enqueue t site ~tenant:ctx.origin (fun () ->
        (match oq with
         | Some oq ->
           oq.metrics.Metrics.control_messages <- oq.metrics.Metrics.control_messages + 1;
           Metrics.add_busy oq.metrics site.id t.config.costs.control_send
         | None -> ());
        record t site.id "cache-validate-send" (Fmt.str "to %d" dst);
        ( t.config.costs.control_send,
          fun () ->
            let span =
              Hf_obs.Tracer.start t.tracer ~parent:ctx.span ~query:(qname ctx.query)
                ~site:site.id ~phase:Hf_obs.Span.Cache
                (Fmt.str "cache-validate->%d" dst)
            in
            deliver t ~src:site.id ~oq ~label:"cache-validate" ~span
              ~transit:t.config.costs.control_transit ~dst
              (Cache_validate { query = ctx.query; src = site.id; span })
              (fun dsite message -> handle_message t dsite message) ))

  (* Charge and ship a batch prepared outside [process_one]'s task (the
     parked-item resolution paths), mirroring [flush_idle]'s send task. *)
  and ship_resolved t site prepared =
    match prepared with
    | _, [] -> ()
    | _, ((ctx0, _, _) :: _ as groups) ->
      enqueue t site ~tenant:ctx0.origin (fun () ->
          let cost = Hf_sim.Costs.batch_send t.config.costs ~items:(batch_total groups) in
          (match find_open t ctx0.query with
           | Some oq -> Metrics.add_busy oq.metrics site.id cost
           | None -> ());
          ( cost,
            fun () ->
              send_prepared t site prepared;
              List.iter (fun ((gctx : context), _, _) -> maybe_drain t site gctx) groups ))

  (* Unpark every item waiting on [dst] and hand each to [resolve]; the
     no-op task at the end forces a pump cycle so pushes that stayed
     under the flush threshold still ship via [flush_idle]. *)
  and release_parked t site ctx ~dst resolve =
    Hashtbl.remove ctx.validating dst;
    match Hashtbl.find_opt ctx.parked dst with
    | None -> maybe_drain t site ctx
    | Some waiting ->
      Hashtbl.remove ctx.parked dst;
      let items = List.rev waiting in
      ctx.parked_count <- ctx.parked_count - List.length items;
      let flushed = List.fold_left (fun acc wi -> resolve wi acc) [] items in
      List.iter (ship_resolved t site) flushed;
      enqueue t site ~tenant:ctx.origin (fun () -> (0.0, fun () -> ()));
      maybe_drain t site ctx

  (* Apply a stitch outcome at the originator: newly activated passing
     nodes join the final results, their bindings merge, and chains
     that escaped the scattered site set re-enter the classic pipeline
     — cache layer, batcher, credit split — as ordinary remote work.
     Credit safety: the fallback ships (or parks, holding the drain
     open) happen here, before the caller deposits any credit the
     gather carried, so the detector can never converge while stitched
     chains still owe work. *)
  and apply_scatter_outcome t site ctx (outcome : Hf_engine.Scatter.Stitch.outcome) =
    let oq = find_open t ctx.query in
    List.iter
      (fun oid ->
        if not (Oid.Set.mem oid ctx.local_result_set) then begin
          ctx.local_result_set <- Oid.Set.add oid ctx.local_result_set;
          match oq with
          | Some oq ->
            if not (Oid.Set.mem oid oq.final_set) then begin
              oq.final_set <- Oid.Set.add oid oq.final_set;
              oq.final_results <- oid :: oq.final_results
            end
          | None -> ()
        end)
      outcome.passed;
    (match oq with
     | Some oq ->
       merge_bindings oq.final_bindings outcome.bindings;
       oq.metrics.Metrics.scatter_fallbacks <-
         oq.metrics.Metrics.scatter_fallbacks + List.length outcome.fallback
     | None -> ());
    if outcome.fallback <> [] then begin
      let flushed =
        List.rev
          (List.fold_left
             (fun acc wi -> route_remote t site ctx wi acc)
             [] outcome.fallback)
      in
      List.iter (ship_resolved t site) flushed;
      (* force a pump cycle so under-threshold pushes still flush *)
      enqueue t site ~tenant:ctx.origin (fun () -> (0.0, fun () -> ()))
    end

  (* Ship buffered results (and piggybacked controls) to the originator;
     or, with nothing buffered, send the detector's drain controls
     standalone. *)
  and drain t site ctx =
    record t site.id "drain" (Fmt.str "%a" Hf_proto.Message.pp_query_id ctx.query);
    ignore
      (Hf_obs.Tracer.instant t.tracer ~parent:ctx.span ~query:(qname ctx.query)
         ~site:site.id ~phase:Hf_obs.Span.Drain "drain");
    let controls, terminated = D.on_drain ctx.detector in
    let oq = find_open t ctx.query in
    (match oq with Some oq when terminated -> finish_query t oq | Some _ | None -> ());
    (* Opportunistic cache fill: ship the verdicts this site computed to
       the originator's cache.  Credit-free — a drop costs future hits,
       never correctness. *)
    if site.cache <> None && site.id <> ctx.origin && ctx.answers <> [] then begin
      let answers = List.rev ctx.answers in
      let version = ctx.answers_version in
      ctx.answers <- [];
      enqueue t site ~tenant:ctx.origin (fun () ->
          (match oq with
           | Some oq ->
             oq.metrics.Metrics.control_messages <- oq.metrics.Metrics.control_messages + 1;
             Metrics.add_busy oq.metrics site.id t.config.costs.control_send
           | None -> ());
          record t site.id "cache-answers-send"
            (Fmt.str "%d verdict(s) to %d" (List.length answers) ctx.origin);
          ( t.config.costs.control_send,
            fun () ->
              let span =
                Hf_obs.Tracer.start t.tracer ~parent:ctx.span ~query:(qname ctx.query)
                  ~site:site.id ~phase:Hf_obs.Span.Cache
                  (Fmt.str "cache-answers->%d" ctx.origin)
              in
              Hf_obs.Tracer.set_detail t.tracer span
                (Fmt.str "%d verdict(s) v=%d" (List.length answers) version);
              deliver t ~src:site.id ~oq ~label:"cache-answers" ~span
                ~transit:t.config.costs.control_transit ~dst:ctx.origin
                (Cache_answers { query = ctx.query; src = site.id; version; answers; span })
                (fun dsite message -> handle_message t dsite message) ))
    end;
    if site.id = ctx.origin then
      (* Originator: results are already final; controls go out directly. *)
      List.iter (send_control t ~src:site.id ctx) controls
    else begin
      let has_results = ctx.result_buffer <> [] || Hashtbl.length ctx.bindings > 0 in
      if not has_results then List.iter (send_control t ~src:site.id ctx) controls
      else begin
        let to_origin, elsewhere =
          List.partition (fun (dst, _) -> dst = ctx.origin) controls
        in
        List.iter (send_control t ~src:site.id ctx) elsewhere;
        let items = List.rev ctx.result_buffer in
        let bindings =
          Hashtbl.fold (fun target values acc -> (target, values) :: acc) ctx.bindings []
        in
        let payload =
          match t.config.result_mode with
          | Ship_items -> Hf_proto.Message.Items items
          | Ship_counts -> Hf_proto.Message.Count (List.length items)
          | Ship_threshold threshold ->
            if List.length items >= threshold then
              Hf_proto.Message.Count (List.length items)
            else Hf_proto.Message.Items items
        in
        ctx.result_buffer <- [];
        Hashtbl.reset ctx.bindings;
        enqueue t site ~tenant:ctx.origin (fun () ->
            (match oq with
             | Some oq ->
               Metrics.add_busy oq.metrics site.id t.config.costs.result_msg_send;
               oq.metrics.Metrics.result_messages <- oq.metrics.Metrics.result_messages + 1;
               oq.metrics.Metrics.result_bytes <-
                 oq.metrics.Metrics.result_bytes + result_message_bytes payload bindings;
               oq.metrics.Metrics.piggybacked_controls <-
                 oq.metrics.Metrics.piggybacked_controls + List.length to_origin;
               (match payload with
                | Hf_proto.Message.Items items ->
                  oq.metrics.Metrics.results_shipped <-
                    oq.metrics.Metrics.results_shipped + List.length items
                | Hf_proto.Message.Count _ -> ())
             | None -> ());
            record t site.id "result-send"
              (Fmt.str "%d items to %d" (List.length items) ctx.origin);
            ( t.config.costs.result_msg_send,
              fun () ->
                let span =
                  Hf_obs.Tracer.start t.tracer ~parent:ctx.span ~query:(qname ctx.query)
                    ~site:site.id ~phase:Hf_obs.Span.Ship
                    (Fmt.str "result->%d" ctx.origin)
                in
                Hf_obs.Tracer.set_detail t.tracer span
                  (Fmt.str "%d item(s)" (List.length items));
                deliver t ~src:site.id ~oq ~label:"result" ~span
                  ~transit:t.config.costs.result_msg_transit ~dst:ctx.origin
                  (Results { query = ctx.query; payload; bindings; piggybacked = to_origin;
                             src = site.id; span })
                  (fun dsite message -> handle_message t dsite message) ))
      end
    end

  (* --- processing one work item --- *)

  and maybe_drain t site ctx =
    if
      Hf_util.Deque.is_empty ctx.work
      && ctx.in_flight = 0
      && pending_for site ctx.query = 0
      && ctx.parked_count = 0
      && (match ctx.scatter with
          | None -> true
          | Some stitch -> Hf_engine.Scatter.Stitch.outstanding stitch = 0)
    then drain t site ctx

  and process_one t site ctx () =
    match Hf_util.Deque.pop_front ctx.work with
    | None -> (0.0, fun () -> ())
    | Some (item, source) ->
      ctx.in_flight <- ctx.in_flight + 1;
      let emit ~target values =
        let existing =
          match Hashtbl.find_opt ctx.bindings target with None -> [] | Some v -> v
        in
        Hashtbl.replace ctx.bindings target (existing @ values)
      in
      let { Hf_engine.Eval.spawned; passed; skipped } =
        Hf_engine.Eval.run_object ~plan:ctx.plan ~find:(Hf_data.Store.find site.store)
          ~marks:ctx.marks ~stats:ctx.stats ~emit item
      in
      let oq = find_open t ctx.query in
      (if skipped && source = From_network then
         match oq with
         | Some oq ->
           oq.metrics.Metrics.duplicate_work_messages <-
             oq.metrics.Metrics.duplicate_work_messages + 1
         | None -> ());
      let local, remote =
        List.partition (fun wi -> t.locate (Hf_engine.Work_item.oid wi) = site.id) spawned
      in
      (* Under the global-marks ablation, suppress sends the shared table
         proves redundant. *)
      let remote =
        match t.config.mark_scope with
        | Local_marks -> remote
        | Global_marks ->
          List.filter
            (fun wi ->
              not
                (Hf_engine.Mark_table.mem ctx.marks (Hf_engine.Work_item.oid wi)
                   (Hf_engine.Work_item.start wi)
                   ~iters:(Hf_engine.Work_item.iters wi)))
            remote
      in
      let is_new_result =
        passed && not (Oid.Set.mem (Hf_engine.Work_item.oid item) ctx.local_result_set)
      in
      let costs = t.config.costs in
      (* Remote spawns go through the cache layer and then the per-site
         batcher; a push that reaches the K threshold hands back the
         whole buffer for that destination, which this task then ships
         (its send CPU is part of this task's duration, as the per-item
         sends were). *)
      let flushed =
        List.rev
          (List.fold_left (fun acc wi -> route_remote t site ctx wi acc) [] remote)
      in
      let duration =
        (if skipped then costs.skip else costs.process)
        +. List.fold_left
             (fun acc (_, groups) ->
               acc +. Hf_sim.Costs.batch_send costs ~items:(batch_total groups))
             0.0 flushed
        +. (if is_new_result && site.id = ctx.origin then costs.result_add else 0.0)
      in
      (match oq with Some oq -> Metrics.add_busy oq.metrics site.id duration | None -> ());
      let complete () =
        ctx.in_flight <- ctx.in_flight - 1;
        (* Record the verdict for the originator's cache: only items
           that arrived over the network (so the originator keyed a
           ship to this site), ran for real (not mark-skipped), and
           whose reachable suffix is store-state-only (cacheable). *)
        (if
           site.cache <> None
           && source = From_network
           && (not skipped)
           && site.id <> ctx.origin
           && Hf_index.Remote_cache.cacheable ctx.plan
                ~start:(Hf_engine.Work_item.start item)
                ~iters:(Hf_engine.Work_item.iters item)
         then begin
           let v = Hf_data.Store.version site.store in
           if ctx.answers <> [] && ctx.answers_version <> v then ctx.answers <- [];
           ctx.answers_version <- v;
           ctx.answers <- (item, passed) :: ctx.answers
         end);
        List.iter
          (fun wi ->
            Hf_util.Deque.push_back ctx.work (wi, Seeded);
            enqueue t site ~tenant:ctx.origin (process_one t site ctx))
          local;
        List.iter (send_prepared t site) flushed;
        if is_new_result then begin
          let oid = Hf_engine.Work_item.oid item in
          ctx.local_result_set <- Oid.Set.add oid ctx.local_result_set;
          if site.id = ctx.origin then (
            match oq with
            | Some oq ->
              if not (Oid.Set.mem oid oq.final_set) then begin
                oq.final_set <- Oid.Set.add oid oq.final_set;
                oq.final_results <- oid :: oq.final_results
              end
            | None -> ())
          else ctx.result_buffer <- oid :: ctx.result_buffer
        end;
        (* At the originator, emitted bindings are final immediately. *)
        if site.id = ctx.origin then begin
          match oq with
          | Some oq ->
            let extra =
              Hashtbl.fold (fun target values acc -> (target, values) :: acc) ctx.bindings []
            in
            Hashtbl.reset ctx.bindings;
            merge_bindings oq.final_bindings extra
          | None -> ()
        end;
        maybe_drain t site ctx;
        (* A flush triggered here may have shipped items other queries
           had buffered; their drain condition can now hold too. *)
        List.iter
          (fun (_, groups) ->
            List.iter
              (fun ((gctx : context), _, _) ->
                if gctx != ctx then maybe_drain t site gctx)
              groups)
          flushed
      in
      (duration, complete)

  (* --- incoming messages --- *)

  and handle_message t site message =
    let costs = t.config.costs in
    match message with
    | Work { groups; src; span } -> (
        (* Resolve each group's context up front; groups whose query is
           no longer open are skipped (their credit is lost, exactly as
           a per-item message for a closed query was).  A fresh context
           parents its evaluation span on the work message's span; a
           site that already held a context records the arrival as an
           instant so the causal edge still shows in the trace. *)
        let resolved =
          List.filter_map
            (fun (query, items, tag) ->
              let existed = Hashtbl.mem site.contexts query in
              match context_of t ~cause:span site query with
              | Some ctx ->
                if existed then
                  ignore
                    (Hf_obs.Tracer.instant t.tracer ~parent:span ~query:(qname query)
                       ~site:site.id ~phase:Hf_obs.Span.Recv
                       (Fmt.str "work-recv x%d" (List.length items)));
                Some (ctx, items, tag)
              | None -> None)
            groups
        in
        match resolved with
        | [] -> (0.0, fun () -> ())
        | (ctx0, _, _) :: _ ->
          let total = batch_total resolved in
          let duration = Hf_sim.Costs.batch_recv costs ~items:total in
          record t site.id "work-recv" (Fmt.str "%d item(s)" total);
          (match find_open t ctx0.query with
           | Some oq -> Metrics.add_busy oq.metrics site.id duration
           | None -> ());
          ( duration,
            fun () ->
              List.iter
                (fun (ctx, items, tag) ->
                  let controls = D.on_recv_work ctx.detector ~src tag in
                  List.iter (send_control t ~src:site.id ctx) controls;
                  List.iter
                    (fun item ->
                      Hf_util.Deque.push_back ctx.work (item, From_network);
                      enqueue t site ~tenant:ctx.origin (process_one t site ctx))
                    items)
                resolved ))
    | Results { query; payload; bindings; piggybacked; src; span } -> (
        match find_open t query with
        | None -> (0.0, fun () -> ())
        | Some oq ->
          let new_items =
            match payload with
            | Hf_proto.Message.Items items ->
              List.filter (fun oid -> not (Oid.Set.mem oid oq.final_set)) items
            | Hf_proto.Message.Count _ -> []
          in
          let duration =
            costs.result_msg_recv
            +. (float_of_int (List.length new_items) *. costs.result_add)
            +. (float_of_int
                  (match payload with
                   | Hf_proto.Message.Items items -> List.length items
                   | Hf_proto.Message.Count _ -> 0)
                *. costs.result_item)
          in
          Metrics.add_busy oq.metrics site.id duration;
          record t site.id "result-recv" (Fmt.str "%d new items" (List.length new_items));
          ignore
            (Hf_obs.Tracer.instant t.tracer ~parent:span ~query:(qname query)
               ~site:site.id ~phase:Hf_obs.Span.Recv
               (Fmt.str "result-recv x%d" (List.length new_items)));
          ( duration,
            fun () ->
              List.iter
                (fun oid ->
                  oq.final_set <- Oid.Set.add oid oq.final_set;
                  oq.final_results <- oid :: oq.final_results)
                new_items;
              merge_bindings oq.final_bindings bindings;
              (match payload with
               | Hf_proto.Message.Count n ->
                 let prev = List.assoc_opt src oq.counts in
                 let rest = List.remove_assoc src oq.counts in
                 oq.counts <- (src, n + Option.value prev ~default:0) :: rest
               | Hf_proto.Message.Items _ -> ());
              match context_of t site query with
              | None -> ()
              | Some ctx ->
                List.iter
                  (fun (_, payload) ->
                    handle_detector_result t oq
                      (D.on_recv_control ctx.detector ~src payload)
                      (send_control t ~src:site.id ctx))
                  piggybacked ))
    | Control { query; payload; src; span } -> (
        match context_of t ~cause:span site query with
        | None -> (0.0, fun () -> ())
        | Some ctx ->
          (match find_open t query with
           | Some oq -> Metrics.add_busy oq.metrics site.id costs.control_recv
           | None -> ());
          record t site.id "control-recv" (Fmt.str "%a" D.pp_control payload);
          ( costs.control_recv,
            fun () ->
              let result = D.on_recv_control ctx.detector ~src payload in
              match find_open t query with
              | None -> ()
              | Some oq ->
                handle_detector_result t oq result (send_control t ~src:site.id ctx) ))
    | Seed_from { query; from; tag; src; span } -> (
        match context_of t ~cause:span site query with
        | None -> (0.0, fun () -> ())
        | Some ctx ->
          ( costs.msg_recv,
            fun () ->
              let controls = D.on_recv_work ctx.detector ~src tag in
              List.iter (send_control t ~src:site.id ctx) controls;
              let seeds =
                (* [from] normally terminated long ago, so its context
                   was evicted and the portion lives in [retained]. *)
                match Hashtbl.find_opt site.contexts from with
                | Some prev -> Oid.Set.elements prev.local_result_set
                | None -> (
                    match Hashtbl.find_opt site.retained from with
                    | Some set -> Oid.Set.elements set
                    | None -> [])
              in
              List.iter
                (fun oid ->
                  Hf_util.Deque.push_back ctx.work
                    (Hf_engine.Work_item.initial ctx.plan oid, From_network);
                  enqueue t site ~tenant:ctx.origin (process_one t site ctx))
                seeds;
              maybe_drain t site ctx ))
    | Ack _ ->
      (* transport-level; consumed in [transmit] before dedup. *)
      (0.0, fun () -> ())
    | Unreachable { query; dead; _ } -> (
        match find_open t query with
        | None -> (0.0, fun () -> ())
        | Some oq ->
          Metrics.add_busy oq.metrics site.id costs.control_recv;
          (costs.control_recv, fun () -> mark_unreachable t oq dead))
    | Cache_validate { query; src; span } ->
      (match find_open t query with
       | Some oq -> Metrics.add_busy oq.metrics site.id costs.control_recv
       | None -> ());
      record t site.id "cache-validate-recv" (Fmt.str "from %d" src);
      ( costs.control_recv,
        fun () ->
          let version = Hf_data.Store.version site.store in
          let summary =
            match t.config.cache with
            | None -> None
            | Some cfg ->
              let bloom =
                match site.summary_memo with
                | Some (v, bloom) when v = version -> bloom
                | Some _ | None ->
                  let bloom = Hf_index.Remote_cache.summary_of_store cfg site.store in
                  site.summary_memo <- Some (version, bloom);
                  site.summary_epoch <- site.summary_epoch + 1;
                  bloom
              in
              if
                match Hashtbl.find_opt site.summary_told src with
                | Some v -> v = version
                | None -> false
              then None (* the asker already holds this version's summary *)
              else begin
                Hashtbl.replace site.summary_told src version;
                Some bloom
              end
          in
          let oq = find_open t query in
          enqueue t site ~tenant:query.originator (fun () ->
              (match oq with
               | Some oq ->
                 oq.metrics.Metrics.control_messages <-
                   oq.metrics.Metrics.control_messages + 1;
                 Metrics.add_busy oq.metrics site.id t.config.costs.control_send
               | None -> ());
              record t site.id "cache-version-send"
                (Fmt.str "v=%d to %d%s" version src
                   (if Option.is_none summary then "" else " +summary"));
              ( t.config.costs.control_send,
                fun () ->
                  let rspan =
                    Hf_obs.Tracer.start t.tracer ~parent:span ~query:(qname query)
                      ~site:site.id ~phase:Hf_obs.Span.Cache
                      (Fmt.str "cache-version->%d" src)
                  in
                  deliver t ~src:site.id ~oq ~label:"cache-version" ~span:rspan
                    ~transit:t.config.costs.control_transit ~dst:src
                    (Cache_version
                       { query; site = site.id; version; epoch = site.summary_epoch;
                         summary; src = site.id; span = rspan })
                    (fun dsite message -> handle_message t dsite message) )) )
    | Cache_version { query; site = peer; version; epoch; summary; src = _; span } ->
      (match find_open t query with
       | Some oq -> Metrics.add_busy oq.metrics site.id costs.control_recv
       | None -> ());
      record t site.id "cache-version-recv" (Fmt.str "site %d at v=%d" peer version);
      ( costs.control_recv,
        fun () ->
          (* An epoch regression means the peer's summary lineage
             restarted: everything learned from the old lineage — flat
             summary, Bloofi leaf, and version-keyed verdicts (the new
             lineage's version can collide) — is dead. *)
          (match Hashtbl.find_opt site.peer_epochs peer with
           | Some e when epoch < e ->
             Hashtbl.remove site.summaries peer;
             Hashtbl.remove site.bloofi_src peer;
             Hf_index.Bloofi.remove site.bloofi ~site:peer;
             Option.iter
               (fun cache -> Hf_index.Remote_cache.drop_dst cache ~dst:peer)
               site.cache
           | Some _ | None -> ());
          Hashtbl.replace site.peer_epochs peer epoch;
          (match summary with
           | Some bloom ->
             Hashtbl.replace site.summaries peer (version, bloom);
             if t.config.bloofi then begin
               Hf_index.Bloofi.insert site.bloofi ~site:peer bloom;
               Hashtbl.replace site.bloofi_src peer bloom
             end
           | None -> (
               (* No summary aboard means "you already have it"; if ours
                  is for another version (the reply that carried the new
                  one was lost), drop it — a stale summary must never
                  prune at the new version. *)
               match Hashtbl.find_opt site.summaries peer with
               | Some (v, _) when v <> version ->
                 Hashtbl.remove site.summaries peer;
                 Hashtbl.remove site.bloofi_src peer;
                 Hf_index.Bloofi.remove site.bloofi ~site:peer
               | Some _ | None -> ()));
          match context_of t ~cause:span site query with
          | None -> ()
          | Some ctx ->
            Hashtbl.replace ctx.validated peer version;
            release_parked t site ctx ~dst:peer (fun wi acc ->
                resolve_item t site ctx ~dst:peer ~version wi acc) )
    | Cache_answers { query; src; version; answers; span } ->
      (match find_open t query with
       | Some oq -> Metrics.add_busy oq.metrics site.id costs.control_recv
       | None -> ());
      record t site.id "cache-answers-recv"
        (Fmt.str "%d verdict(s) from %d" (List.length answers) src);
      ( costs.control_recv,
        fun () ->
          match (site.cache, context_of t ~cause:span site query) with
          | Some cache, Some ctx ->
            (match find_open t query with
             | Some oq ->
               oq.metrics.Metrics.cache_fills <-
                 oq.metrics.Metrics.cache_fills + List.length answers
             | None -> ());
            List.iter
              (fun (wi, passed) ->
                let key =
                  Hf_index.Remote_cache.entry_key ~dst:src ~plan:ctx.plan
                    ~start:(Hf_engine.Work_item.start wi)
                    ~iters:(Hf_engine.Work_item.iters wi)
                    ~oid:(Hf_engine.Work_item.oid wi)
                in
                Hf_index.Remote_cache.put cache ~now:(Hf_sim.Sim.now t.sim) ~key
                  ~version ~passed)
              answers
          | (Some _ | None), _ -> () )
    | Scatter { query; roots; tag; src; span } -> (
        (* A scattered site evaluates its whole speculation domain in
           one go: every local object at every landing pc, plus the
           seeds the originator assigned here.  The reply carries the
           productive nodes AND every to-origin control the drain
           produced, so credit can never overtake the nodes it
           covers. *)
        match context_of t ~cause:span site query with
        | None -> (0.0, fun () -> ()) (* closed query: credit dies, like work *)
        | Some ctx ->
          let oids = Hf_data.Store.oids site.store in
          let landing =
            List.length
              (Hf_query.Plan.landing_pcs (Hf_engine.Plan.program ctx.plan))
          in
          let domain = List.length roots + (List.length oids * landing) in
          let duration =
            costs.msg_recv +. (float_of_int domain *. costs.process)
          in
          record t site.id "scatter-recv"
            (Fmt.str "%d root(s), %d-node domain from %d" (List.length roots)
               domain src);
          (match find_open t query with
           | Some oq -> Metrics.add_busy oq.metrics site.id duration
           | None -> ());
          ( duration,
            fun () ->
              let controls = D.on_recv_work ctx.detector ~src tag in
              List.iter (send_control t ~src:site.id ctx) controls;
              let nodes =
                Hf_engine.Scatter.eval_site ~plan:ctx.plan
                  ~find:(Hf_data.Store.find site.store) ~oids ~roots
                  ~stats:ctx.stats
              in
              (* The whole domain is done; drain immediately.  Controls
                 bound for the originator ride the gather itself. *)
              let controls, terminated = D.on_drain ctx.detector in
              (match find_open t query with
               | Some oq when terminated -> finish_query t oq
               | Some _ | None -> ());
              let to_origin, elsewhere =
                List.partition (fun (dst, _) -> dst = ctx.origin) controls
              in
              List.iter (send_control t ~src:site.id ctx) elsewhere;
              let oq = find_open t query in
              enqueue t site ~tenant:ctx.origin (fun () ->
                  (match oq with
                   | Some oq ->
                     Metrics.add_busy oq.metrics site.id
                       t.config.costs.result_msg_send;
                     oq.metrics.Metrics.gather_messages <-
                       oq.metrics.Metrics.gather_messages + 1;
                     oq.metrics.Metrics.gather_nodes <-
                       oq.metrics.Metrics.gather_nodes + List.length nodes;
                     oq.metrics.Metrics.gather_bytes <-
                       oq.metrics.Metrics.gather_bytes
                       + gather_message_bytes nodes
                   | None -> ());
                  record t site.id "gather-send"
                    (Fmt.str "%d node(s) to %d" (List.length nodes) ctx.origin);
                  ( t.config.costs.result_msg_send,
                    fun () ->
                      let gspan =
                        Hf_obs.Tracer.start t.tracer ~parent:ctx.span
                          ~query:(qname query) ~site:site.id
                          ~phase:Hf_obs.Span.Scatter
                          (Fmt.str "gather->%d" ctx.origin)
                      in
                      Hf_obs.Tracer.set_detail t.tracer gspan
                        (Fmt.str "%d node(s)" (List.length nodes));
                      deliver t ~src:site.id ~oq ~label:"gather" ~span:gspan
                        ~transit:t.config.costs.result_msg_transit
                        ~dst:ctx.origin
                        (Gather
                           { query; nodes; piggybacked = to_origin;
                             src = site.id; span = gspan })
                        (fun dsite message -> handle_message t dsite message) )) ))
    | Gather { query; nodes; piggybacked; src; span } -> (
        match find_open t query with
        | None -> (0.0, fun () -> ())
        | Some oq ->
          let duration =
            costs.result_msg_recv
            +. (float_of_int (List.length nodes) *. costs.result_item)
          in
          Metrics.add_busy oq.metrics site.id duration;
          record t site.id "gather-recv"
            (Fmt.str "%d node(s) from %d" (List.length nodes) src);
          ignore
            (Hf_obs.Tracer.instant t.tracer ~parent:span ~query:(qname query)
               ~site:site.id ~phase:Hf_obs.Span.Scatter
               (Fmt.str "gather-recv x%d" (List.length nodes)));
          ( duration,
            fun () ->
              match context_of t ~cause:span site query with
              | None -> ()
              | Some ctx ->
                (match ctx.scatter with
                 | None -> ()
                 | Some stitch ->
                   let outcome =
                     Hf_engine.Scatter.Stitch.add_gather stitch ~site:src nodes
                   in
                   (* fallback credit splits happen inside, BEFORE the
                      piggybacked deposits below *)
                   apply_scatter_outcome t site ctx outcome);
                List.iter
                  (fun (_, payload) ->
                    handle_detector_result t oq
                      (D.on_recv_control ctx.detector ~src payload)
                      (send_control t ~src:site.id ctx))
                  piggybacked;
                maybe_drain t site ctx ))

  (* --- detector polling (wave-based detectors) --- *)

  let start_polling t oq ctx origin_site =
    match D.poll_interval with
    | None -> ()
    | Some interval ->
      let deadline = oq.start_time +. t.config.poll_window in
      let rec tick () =
        if (not oq.terminated) && Hf_sim.Sim.now t.sim <= deadline then begin
          let controls = D.on_poll ctx.detector in
          List.iter (send_control t ~src:origin_site.id ctx) controls;
          Hf_sim.Sim.schedule t.sim ~delay:interval tick
        end
      in
      Hf_sim.Sim.schedule t.sim ~delay:interval tick

  (* --- the execution-mode planner (doc/execution_modes.md) --- *)

  (* Locality signal: the fraction of the origin store's pointer tuples
     whose target lives on-site, memoized per store version.  This is
     what separates the two ends of the locality sweep — chains that
     mostly stay home make shipping's expected hop count collapse. *)
  let p_local_of t site =
    let version = Hf_data.Store.version site.store in
    match site.locality_memo with
    | Some (v, p) when v = version -> p
    | Some _ | None ->
      let total = ref 0 and local = ref 0 in
      Hf_data.Store.iter site.store (fun obj ->
          List.iter
            (fun target ->
              incr total;
              if t.locate target = site.id then incr local)
            (Hf_data.Hobject.pointers obj));
      let p =
        if !total = 0 then 1.0 else float_of_int !local /. float_of_int !total
      in
      site.locality_memo <- Some (version, p);
      p

  (* The peer summary the planner consults: preferably what the origin
     learned from [Cache_version] replies — but only while the peer's
     store is still at the version the summary was built for, because
     the [Seed_from] broadcast prune skips sites on the strength of this
     filter and a stale one could miss content the peer has since
     gained.  Otherwise (cache layer on but the learned entry is stale
     or absent) the peer's own memoized summary — the simulator's
     stand-in for the stats a real deployment piggybacks on the
     validation round trip.  With the cache layer off there is no
     summary channel at all and the planner stays conservative. *)
  let summary_for t origin_site peer =
    match Hashtbl.find_opt origin_site.summaries peer.id with
    | Some (v, bloom) when v = Hf_data.Store.version peer.store -> Some bloom
    | Some _ | None -> (
        match t.config.cache with
        | None -> None
        | Some cfg ->
          let version = Hf_data.Store.version peer.store in
          let bloom =
            match peer.summary_memo with
            | Some (v, bloom) when v = version -> bloom
            | Some _ | None ->
              let bloom = Hf_index.Remote_cache.summary_of_store cfg peer.store in
              peer.summary_memo <- Some (version, bloom);
              bloom
          in
          Some bloom)

  (* Bring [origin_site]'s Bloofi leaves in line with what the summary
     channel would answer right now: upsert peers whose filter changed
     (physical inequality — learned summaries and memo entries are
     shared, so an unchanged summary is the same block), drop peers the
     channel no longer vouches for.  The lazy half of tree maintenance;
     the eager half is the [Cache_version] receive arm. *)
  let sync_bloofi t origin_site =
    Array.iter
      (fun peer ->
        if peer.id <> origin_site.id then
          match summary_for t origin_site peer with
          | Some bloom ->
            if
              match Hashtbl.find_opt origin_site.bloofi_src peer.id with
              | Some installed -> installed != bloom
              | None -> true
            then begin
              Hf_index.Bloofi.insert origin_site.bloofi ~site:peer.id bloom;
              Hashtbl.replace origin_site.bloofi_src peer.id bloom
            end
          | None ->
            if Hashtbl.mem origin_site.bloofi_src peer.id then begin
              Hashtbl.remove origin_site.bloofi_src peer.id;
              Hf_index.Bloofi.remove origin_site.bloofi ~site:peer.id
            end)
      t.sites

  (* Price both modes for [program] over [initial] and pick one.  Pure
     given its inputs: seed placement from [locate], per-peer hints from
     the summary channel (store cardinality standing in for the store
     stats the validation reply reports), and unit costs lifted straight
     from the simulator's cost table so the estimates share dimensions
     with what the run will actually charge.  With [config.bloofi] the
     landing verdicts come from one tree descent; leaves equal the flat
     filters, so the verdicts are identical — only the probe cost
     changes (and [decision.index] reports it). *)
  let plan_decision t ~origin program initial =
    let plan = Hf_engine.Plan.make program in
    let zeros = Array.make (Hf_engine.Plan.iter_count plan) 0 in
    let landing = Hf_query.Plan.landing_pcs program in
    let seed_sites =
      List.fold_left
        (fun acc oid ->
          let s = t.locate oid in
          match List.assoc_opt s acc with
          | Some n -> (s, n + 1) :: List.remove_assoc s acc
          | None -> (s, 1) :: acc)
        [] initial
    in
    let origin_site = t.sites.(origin) in
    let landing_groups =
      List.map
        (fun pc -> Hf_index.Remote_cache.prune_probes plan ~start:pc ~iters:zeros)
        landing
    in
    let start_probes =
      Hf_index.Remote_cache.prune_probes plan ~start:0 ~iters:zeros
    in
    let flat_may bloom =
      landing_groups = []
      || List.exists
           (fun probes ->
             probes = []
             || not (Hf_index.Remote_cache.summary_misses bloom probes))
           landing_groups
    in
    let seed_may bloom =
      start_probes = []
      || not (Hf_index.Remote_cache.summary_misses bloom start_probes)
    in
    let index_probe =
      if not t.config.bloofi then None
      else begin
        sync_bloofi t origin_site;
        let tree = origin_site.bloofi in
        if Hf_index.Bloofi.cardinal tree = 0 then None
        else begin
          let r = Hf_index.Bloofi.probe tree landing_groups in
          Hf_obs.Histogram.observe t.bloofi_depth (float_of_int r.depth);
          let may = Hashtbl.create 16 in
          List.iter (fun s -> Hashtbl.replace may s ()) r.sites;
          let stats =
            {
              Hf_query.Plan.indexed = Hf_index.Bloofi.cardinal tree;
              touched = r.touched;
              depth = r.depth;
              pruned = Hf_index.Bloofi.cardinal tree - List.length r.sites;
            }
          in
          Some (tree, may, stats)
        end
      end
    in
    let hints =
      List.filter_map
        (fun peer ->
          if peer.id = origin then None
          else
            let summary = summary_for t origin_site peer in
            let may_match =
              match index_probe with
              | Some (tree, may, _) when Hf_index.Bloofi.mem tree ~site:peer.id
                ->
                Some (Hashtbl.mem may peer.id)
              | Some _ | None -> Option.map flat_may summary
            in
            let seed_may_match = Option.map seed_may summary in
            let objects = Some (Hf_data.Store.cardinal peer.store) in
            Some { Hf_query.Plan.site = peer.id; objects; may_match; seed_may_match })
        (Array.to_list t.sites)
    in
    let costs = t.config.costs in
    let item_bytes = 13 + 4 + (4 * Hf_engine.Plan.iter_count plan) in
    let plan_costs =
      {
        Hf_query.Plan.transit = costs.msg_transit;
        header_bytes = batch_header_bytes program;
        item_bytes;
        node_bytes = 32;
        eval_s = costs.process;
        byte_s = costs.msg_item_transit /. float_of_int item_bytes;
        p_local = p_local_of t origin_site;
      }
    in
    Hf_query.Plan.decide ~program ~origin ~seed_sites ~hints
      ?index:(Option.map (fun (_, _, stats) -> stats) index_probe)
      ~costs:plan_costs ()

  (* The planner's verdict without running the query — [hfql :plan] and
     [hfql demo --explain-plan] render this. *)
  let explain t ~origin program initial =
    if origin < 0 || origin >= n_sites t then
      invalid_arg "Cluster.explain: bad origin";
    plan_decision t ~origin program initial

  (* --- issuing queries --- *)

  let open_query t ~origin program =
    let query = { Hf_proto.Message.originator = origin; serial = t.next_serial } in
    t.next_serial <- t.next_serial + 1;
    let span =
      Hf_obs.Tracer.start t.tracer ~query:(qname query) ~site:origin
        ~phase:Hf_obs.Span.Query "query"
    in
    let oq =
      {
        id = query;
        program;
        start_time = Hf_sim.Sim.now t.sim;
        span;
        metrics = Metrics.create ~n_sites:(n_sites t);
        final_results = [];
        final_set = Oid.Set.empty;
        final_bindings = Hashtbl.create 4;
        counts = [];
        terminated = false;
        unreachable_sites = [];
        finish_time = Hf_sim.Sim.now t.sim;
        admitted = false;
        queue_wait_s = 0.0;
        cancelled = false;
        captured = None;
        mode = Hf_query.Plan.Ship;
        decision = None;
      }
    in
    Hashtbl.replace t.open_queries query oq;
    oq

  let outcome_of t oq =
    let bindings =
      Hashtbl.fold (fun target values acc -> (target, values) :: acc) oq.final_bindings []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let origin_local =
      (* live while the query runs, snapshotted once termination evicts
         the per-site contexts *)
      match oq.captured with
      | Some (_, origin_local) -> Some origin_local
      | None -> (
          match Hashtbl.find_opt t.sites.(oq.id.originator).contexts oq.id with
          | Some ctx -> Some (Oid.Set.cardinal ctx.local_result_set)
          | None -> None)
    in
    let counts =
      (* include the originator's own local results in counting modes *)
      match t.config.result_mode with
      | Ship_items -> oq.counts
      | Ship_counts | Ship_threshold _ -> (
          match origin_local with
          | None -> oq.counts
          | Some n ->
            (oq.id.originator, n)
            :: List.filter (fun (s, _) -> s <> oq.id.originator) oq.counts)
    in
    {
      results = List.rev oq.final_results;
      result_set = oq.final_set;
      bindings;
      counts = List.sort compare counts;
      terminated = oq.terminated;
      unreachable_sites = List.sort compare oq.unreachable_sites;
      response_time =
        (if oq.terminated then oq.finish_time -. oq.start_time
         else Hf_sim.Sim.now t.sim -. oq.start_time);
      queue_wait_s = oq.queue_wait_s;
      metrics = oq.metrics;
      mode = oq.mode;
      plan_decision = oq.decision;
      engine_stats =
        (match oq.captured with
         | Some (stats, _) -> stats
         | None -> merged_stats t oq.id);
    }

  type handle = open_query

  (* Schedule a query from [origin] over [initial] without running the
     simulation — several submitted queries then execute concurrently,
     contending for the same site CPUs, when the simulation runs.
     Submissions pass the origin's admission gate: over the in-flight
     cap they wait (fairly, by tenant) for a slot; over [max_queued]
     the submission is rejected with [Failure]. *)
  let rec submit t ~origin program initial =
    if origin < 0 || origin >= n_sites t then invalid_arg "Cluster.submit: bad origin";
    let oq = open_query t ~origin program in
    let origin_site = t.sites.(origin) in
    let seed () =
      (* virtual time spent held at the admission gate; recorded as a
         retroactive Wait span so profiles separate queueing from work *)
      let now = Hf_sim.Sim.now t.sim in
      let wait = Float.max 0.0 (now -. oq.start_time) in
      oq.queue_wait_s <- wait;
      Hf_obs.Histogram.observe t.admission_wait wait;
      if wait > 0.0 then
        ignore
          (Hf_obs.Tracer.complete t.tracer ~parent:oq.span ~query:(qname oq.id)
             ~site:origin ~phase:Hf_obs.Span.Wait ~start:oq.start_time ~finish:now
             "admission-wait");
      seed_query t oq origin_site initial
    in
    (match Sched.admit t.gates.(origin) ~tenant:origin (oq.id, seed) with
     | Sched.Run ->
       oq.admitted <- true;
       seed ()
     | Sched.Queued -> ()
     | Sched.Rejected ->
       Hashtbl.remove t.open_queries oq.id;
       Hf_obs.Tracer.finish ~detail:"rejected" t.tracer oq.span;
       failwith
         (Fmt.str "Cluster.submit: admission queue full at site %d (%a)" origin
            Sched.pp_config t.config.admission));
    oq

  and seed_query t oq origin_site initial =
    let origin = origin_site.id in
    match context_of t origin_site oq.id with
    | None -> assert false
    | Some ctx ->
      D.on_seed ctx.detector;
      start_polling t oq ctx origin_site;
      (* Mode selection: [Exec_ship] is the byte-identical legacy path
         (no planner at all); [Exec_scatter] forces scatter whenever the
         engine can do it; [Exec_auto] lets the cost model choose.
         Scatter additionally needs [Local_marks] (the stitch reproduces
         per-site entry suppression, not a global table's) and
         [Ship_items] (gathers carry nodes, not counts). *)
      let decision =
        match t.config.exec with
        | Exec_ship -> None
        | Exec_scatter | Exec_auto ->
          Some (plan_decision t ~origin oq.program initial)
      in
      oq.decision <- decision;
      let engine_ok =
        (match t.config.mark_scope with
         | Local_marks -> true
         | Global_marks -> false)
        && match t.config.result_mode with
           | Ship_items -> true
           | Ship_counts | Ship_threshold _ -> false
      in
      let scatter_sites =
        match decision with
        | None -> None
        | Some d ->
          let can =
            engine_ok && d.Hf_query.Plan.eligible
            && d.Hf_query.Plan.predicted <> []
          in
          (match t.config.exec with
           | Exec_ship -> None
           | Exec_scatter -> if can then Some d.Hf_query.Plan.predicted else None
           | Exec_auto ->
             if
               can
               && Hf_query.Plan.equal_mode d.Hf_query.Plan.chosen
                    Hf_query.Plan.Scatter
             then Some d.Hf_query.Plan.predicted
             else None)
      in
      (match decision with
       | None -> ()
       | Some _ ->
         if Option.is_some scatter_sites then
           oq.metrics.Metrics.planner_scatter <-
             oq.metrics.Metrics.planner_scatter + 1
         else
           oq.metrics.Metrics.planner_ship <- oq.metrics.Metrics.planner_ship + 1);
      (match scatter_sites with
       | Some sites ->
         oq.mode <- Hf_query.Plan.Scatter;
         seed_scatter t oq origin_site ctx ~sites initial
       | None -> seed_shipping t oq origin_site ctx initial)

  and seed_scatter t oq origin_site ctx ~sites initial =
    let origin = origin_site.id in
    (* Partition the seeds over the scattered set.  The planner's
       predicted set always covers the remote seed sites, but a custom
       [locate] could disagree with a stale view, so anything that lands
       outside the member set ships classically — same contract as a
       stitched chain that escapes. *)
    let member = Hashtbl.create 7 in
    List.iter (fun s -> Hashtbl.replace member s ()) (origin :: sites);
    let roots = Hashtbl.create 7 in
    let stray = ref [] in
    List.iter
      (fun oid ->
        let s = t.locate oid in
        if Hashtbl.mem member s then
          Hashtbl.replace roots s
            (oid
            ::
            (match Hashtbl.find_opt roots s with Some l -> l | None -> []))
        else stray := oid :: !stray)
      initial;
    let roots_of s =
      match Hashtbl.find_opt roots s with Some l -> List.rev l | None -> []
    in
    let stitch =
      Hf_engine.Scatter.Stitch.create ~plan:ctx.plan ~locate:t.locate
        ~sites:(origin :: sites)
        ~roots:(List.map (fun s -> (s, roots_of s)) (origin :: sites))
    in
    (* installed before any task runs, so [maybe_drain] holds the origin
       open until every gather (or a death verdict) lands *)
    ctx.scatter <- Some stitch;
    enqueue t origin_site ~tenant:origin (fun () ->
        let oids = Hf_data.Store.oids origin_site.store in
        let landing =
          List.length
            (Hf_query.Plan.landing_pcs (Hf_engine.Plan.program ctx.plan))
        in
        let own_roots = roots_of origin in
        let domain = List.length own_roots + (List.length oids * landing) in
        let duration =
          (float_of_int domain *. t.config.costs.process)
          +. (float_of_int (List.length sites) *. t.config.costs.msg_send)
        in
        Metrics.add_busy oq.metrics origin duration;
        record t origin "scatter-seed"
          (Fmt.str "%d site(s), %d-node local domain" (List.length sites) domain);
        ( duration,
          fun () ->
            (* Local half: the originator evaluates its own domain and
               feeds the stitch as if it had gathered from itself. *)
            let nodes =
              Hf_engine.Scatter.eval_site ~plan:ctx.plan
                ~find:(Hf_data.Store.find origin_site.store) ~oids
                ~roots:own_roots ~stats:ctx.stats
            in
            let outcome =
              Hf_engine.Scatter.Stitch.add_gather stitch ~site:origin nodes
            in
            apply_scatter_outcome t origin_site ctx outcome;
            (if !stray <> [] then begin
               let flushed =
                 List.rev
                   (List.fold_left
                      (fun acc oid ->
                        route_remote t origin_site ctx
                          (Hf_engine.Work_item.initial ctx.plan oid)
                          acc)
                      [] (List.rev !stray))
               in
               List.iter (ship_resolved t origin_site) flushed
             end);
            List.iter
              (fun dst ->
                let tag = D.on_send_work ctx.detector ~dst in
                let dst_roots = roots_of dst in
                let program = Hf_engine.Plan.program ctx.plan in
                oq.metrics.Metrics.scatter_messages <-
                  oq.metrics.Metrics.scatter_messages + 1;
                oq.metrics.Metrics.scatter_bytes <-
                  oq.metrics.Metrics.scatter_bytes
                  + scatter_message_bytes program dst_roots;
                let span =
                  Hf_obs.Tracer.start t.tracer ~parent:ctx.span
                    ~query:(qname oq.id) ~site:origin
                    ~phase:Hf_obs.Span.Scatter
                    (Fmt.str "scatter->%d" dst)
                in
                Hf_obs.Tracer.set_detail t.tracer span
                  (Fmt.str "%d root(s)" (List.length dst_roots));
                deliver t ~src:origin ~oq:(Some oq) ~label:"scatter" ~span
                  ~transit:
                    (Hf_sim.Costs.batch_transit t.config.costs
                       ~items:(max 1 (List.length dst_roots)))
                  ~dst
                  (Scatter
                     { query = oq.id; roots = dst_roots; tag; src = origin; span })
                  (fun dsite message -> handle_message t dsite message))
              sites;
            (* force a pump cycle so stray pushes below the batch
               threshold still flush *)
            enqueue t origin_site ~tenant:origin (fun () -> (0.0, fun () -> ()));
            maybe_drain t origin_site ctx ))

  and seed_shipping t oq origin_site ctx initial =
    let origin = origin_site.id in
    enqueue t origin_site ~tenant:origin (fun () ->
        let local, remote =
          List.partition (fun oid -> t.locate oid = origin) initial
        in
           (* Remote seeds ride the same cache layer and per-site
              batcher as spawned work, so concurrent submissions
              coalesce too. *)
           let flushed =
             List.rev
               (List.fold_left
                  (fun acc oid ->
                    route_remote t origin_site ctx
                      (Hf_engine.Work_item.initial ctx.plan oid)
                      acc)
                  [] remote)
           in
           let duration =
             List.fold_left
               (fun acc (_, groups) ->
                 acc +. Hf_sim.Costs.batch_send t.config.costs ~items:(batch_total groups))
               0.0 flushed
           in
           Metrics.add_busy oq.metrics origin duration;
           ( duration,
             fun () ->
               List.iter
                 (fun oid ->
                   Hf_util.Deque.push_back ctx.work
                     (Hf_engine.Work_item.initial ctx.plan oid, Seeded);
                   enqueue t origin_site ~tenant:origin (process_one t origin_site ctx))
                 local;
               List.iter (send_prepared t origin_site) flushed;
               maybe_drain t origin_site ctx;
               (* Flushes can carry other concurrent submissions' items. *)
               List.iter
                 (fun (_, groups) ->
                   List.iter
                     (fun ((gctx : context), _, _) ->
                       if gctx != ctx then maybe_drain t origin_site gctx)
                     groups)
                 flushed ))

  (* Run every scheduled event; submitted queries execute (and contend)
     together. *)
  let await_quiescence t = Hf_sim.Sim.run t.sim

  let outcome t handle = outcome_of t handle

  (* EXPLAIN ANALYZE (DESIGN.md §4i): fold the tracer's spans for this
     query into a per-site phase/rounds breakdown, with the engine's own
     per-query counters pinned alongside as scalars.  The scalars come
     from [Metrics], not from the spans — the differential tests check
     the two accounts agree. *)
  let profile ?spans t (handle : handle) =
    let o = outcome_of t handle in
    (* [?spans] lets a monitoring loop profiling many handles fetch (and
       sort) the tracer's spans once instead of per handle *)
    let spans =
      match spans with Some s -> s | None -> Hf_obs.Tracer.spans t.tracer
    in
    let m = o.metrics in
    Hf_obs.Profile.of_spans ~query:(qname handle.id)
      ~scalars:
        [
          ("messages", Hf_obs.Profile.Int (Metrics.total_messages m));
          ("bytes", Hf_obs.Profile.Int (Metrics.total_bytes m));
          ("work_messages", Hf_obs.Profile.Int m.Metrics.work_messages);
          ("work_items", Hf_obs.Profile.Int m.Metrics.work_items);
          ("results", Hf_obs.Profile.Int (List.length o.results));
          ("busy_total_s", Hf_obs.Profile.Float (Metrics.total_busy m));
          ("queue_wait_s", Hf_obs.Profile.Float o.queue_wait_s);
          ("response_time_s", Hf_obs.Profile.Float o.response_time);
          ("cache_hits", Hf_obs.Profile.Int m.Metrics.cache_hits);
          ("cache_prunes", Hf_obs.Profile.Int m.Metrics.cache_prunes);
          ("retransmits", Hf_obs.Profile.Int m.Metrics.retransmits);
          (* 1 when the query ran scatter-gather, 0 for classic shipping
             (scalars are numeric; the mode name itself is in the
             outcome and the slow-query log) *)
          ( "mode_scatter",
            Hf_obs.Profile.Int
              (match handle.mode with
               | Hf_query.Plan.Scatter -> 1
               | Hf_query.Plan.Ship -> 0) );
          ("scatter_messages", Hf_obs.Profile.Int m.Metrics.scatter_messages);
          ("gather_nodes", Hf_obs.Profile.Int m.Metrics.gather_nodes);
          ("scatter_fallbacks", Hf_obs.Profile.Int m.Metrics.scatter_fallbacks);
          ("planner_scatter", Hf_obs.Profile.Int m.Metrics.planner_scatter);
          ("planner_ship", Hf_obs.Profile.Int m.Metrics.planner_ship);
        ]
      ~dropped:(Hf_obs.Tracer.dropped t.tracer)
      spans

  let query_id (handle : handle) = handle.id

  (* Cancel a submitted query.  A submission still queued at the
     admission gate simply leaves the queue; a running one has its
     per-site state evicted and becomes invisible to the message paths
     (late messages drop at [find_open]/[context_of]).  The per-site
     detector instances are discarded with the contexts — the origin no
     longer needs their credit to converge, which is the same soundness
     argument [abandon] makes for an unreachable peer's messages. *)
  let cancel t (handle : handle) =
    let oq = handle in
    if not (oq.terminated || oq.cancelled) then
      if not oq.admitted then begin
        ignore
          (Sched.cancel_queued t.gates.(oq.id.originator) (fun (q, _) ->
               Hf_proto.Message.equal_query_id q oq.id));
        oq.cancelled <- true;
        Hf_obs.Tracer.finish ~detail:"cancelled" t.tracer oq.span
      end
      else begin
        record t oq.id.originator "cancel" (qname oq.id);
        (* Empty every working set first so tasks already queued for
           this query's contexts complete as no-ops. *)
        Array.iter
          (fun site ->
            match Hashtbl.find_opt site.contexts oq.id with
            | Some ctx ->
              Hf_util.Deque.clear ctx.work;
              Hashtbl.reset ctx.parked;
              ctx.parked_count <- 0;
              ctx.result_buffer <- []
            | None -> ())
          t.sites;
        evict_query t oq;
        oq.cancelled <- true;
        oq.finish_time <- Hf_sim.Sim.now t.sim
      end

  let cancelled (handle : handle) = handle.cancelled

  (* Issue a query and run the simulation until the cluster goes quiet —
     the sequential-client model of the paper's experiments. *)
  let run_query t ~origin program initial =
    let oq = submit t ~origin program initial in
    Hf_sim.Sim.run t.sim;
    outcome_of t oq

  (* Re-query over the distributed result set of a previous query
     (Section 5's proposed optimisation): each site seeds its working
     set from its retained portion of [from]'s results; only one message
     per site crosses the network. *)
  let run_query_on_distributed t ~origin ~from program =
    let oq = open_query t ~origin program in
    let origin_site = t.sites.(origin) in
    (match context_of t origin_site oq.id with
     | None -> assert false
     | Some ctx ->
       D.on_seed ctx.detector;
       start_polling t oq ctx origin_site;
       enqueue t origin_site ~tenant:origin (fun () ->
           let remote_sites =
             List.filter (fun s -> s <> origin) (List.init (n_sites t) Fun.id)
           in
           (* Bloofi pre-broadcast prune: a site whose summary misses
              the probes every object needs to survive the program's
              first filter can only contribute dead seeds — skip its
              Seed_from entirely.  Unindexed sites (no summary learned
              or channel off) are always contacted, so a stale or empty
              tree over-ships but never loses a result. *)
           let remote_sites =
             if not t.config.bloofi then remote_sites
             else begin
               sync_bloofi t origin_site;
               let zeros =
                 Array.make (Hf_engine.Plan.iter_count ctx.plan) 0
               in
               let probes =
                 Hf_index.Remote_cache.prune_probes ctx.plan ~start:0
                   ~iters:zeros
               in
               if probes = [] || Hf_index.Bloofi.cardinal origin_site.bloofi = 0
               then remote_sites
               else begin
                 let r = Hf_index.Bloofi.probe origin_site.bloofi [ probes ] in
                 Hf_obs.Histogram.observe t.bloofi_depth (float_of_int r.depth);
                 let may = Hashtbl.create 16 in
                 List.iter (fun s -> Hashtbl.replace may s ()) r.sites;
                 List.filter
                   (fun s ->
                     Hashtbl.mem may s
                     || not (Hf_index.Bloofi.mem origin_site.bloofi ~site:s))
                   remote_sites
               end
             end
           in
           let duration =
             float_of_int (List.length remote_sites) *. t.config.costs.msg_send
           in
           Metrics.add_busy oq.metrics origin duration;
           ( duration,
             fun () ->
               (* Local portion ([retained] once [from] terminated and
                  its context was evicted). *)
               let local_seeds =
                 match Hashtbl.find_opt origin_site.contexts from with
                 | Some prev -> Oid.Set.elements prev.local_result_set
                 | None -> (
                     match Hashtbl.find_opt origin_site.retained from with
                     | Some set -> Oid.Set.elements set
                     | None -> [])
               in
               List.iter
                 (fun oid ->
                   Hf_util.Deque.push_back ctx.work
                     (Hf_engine.Work_item.initial ctx.plan oid, Seeded);
                   enqueue t origin_site ~tenant:origin (process_one t origin_site ctx))
                 local_seeds;
               List.iter
                 (fun dst ->
                   let tag = D.on_send_work ctx.detector ~dst in
                   oq.metrics.Metrics.work_messages <- oq.metrics.Metrics.work_messages + 1;
                   let span =
                     Hf_obs.Tracer.start t.tracer ~parent:ctx.span ~query:(qname oq.id)
                       ~site:origin ~phase:Hf_obs.Span.Ship
                       (Fmt.str "seed->%d" dst)
                   in
                   deliver t ~src:origin ~oq:(Some oq) ~label:"seed" ~span
                     ~transit:t.config.costs.msg_transit ~dst
                     (Seed_from { query = oq.id; from; tag; src = origin; span })
                     (fun dsite message -> handle_message t dsite message))
                 remote_sites;
               maybe_drain t origin_site ctx )));
    Hf_sim.Sim.run t.sim;
    outcome_of t oq

  let forget_query t query =
    Hashtbl.remove t.open_queries query;
    Array.iter
      (fun site ->
        Hashtbl.remove site.contexts query;
        Hashtbl.remove site.retained query;
        Hashtbl.remove site.out_pending query)
      t.sites

  (* --- introspection for the leak-regression and admission tests --- *)

  (* Live per-site contexts across the cluster; zero once every
     submitted query reached terminal status (satellite 1's invariant). *)
  let context_count t =
    Array.fold_left (fun acc site -> acc + Hashtbl.length site.contexts) 0 t.sites

  (* Buffered-item ledger entries across the cluster; like [contexts]
     these must return to empty at quiescence. *)
  let buffered_count t =
    Array.fold_left (fun acc site -> acc + Hashtbl.length site.out_pending) 0 t.sites

  let retained_count t =
    Array.fold_left (fun acc site -> acc + Hashtbl.length site.retained) 0 t.sites

  let admission_running t ~origin = Sched.running t.gates.(origin)

  let admission_queued t ~origin = Sched.queued t.gates.(origin)

  let last_query_id t =
    if t.next_serial = 0 then None
    else
      Hashtbl.fold
        (fun id _ acc ->
          match acc with
          | Some best when Hf_proto.Message.compare_query_id best id >= 0 -> acc
          | Some _ | None -> Some id)
        t.open_queries None
end
