(* Hand-rolled binary codec for the wire protocol.

   Layout conventions: unsigned LEB128 varints for lengths and small
   non-negative numbers, zigzag varints for possibly-negative integers,
   IEEE-754 bits for floats, one-byte tags for variants, length-prefixed
   raw bytes for strings.  No host-order dependence, no Marshal. *)

exception Decode_error of string

let fail fmt = Fmt.kstr (fun message -> raise (Decode_error message)) fmt

(* --- Writer --- *)

type writer = Buffer.t

let write_u8 buf n =
  assert (n >= 0 && n < 256);
  Buffer.add_char buf (Char.chr n)

(* LEB128 over the int's 63-bit pattern treated as unsigned; [lsr] is a
   logical shift, so negative patterns (from zigzag) terminate too. *)
let rec write_uint buf n =
  if n land lnot 0x7f = 0 then write_u8 buf n
  else begin
    write_u8 buf (0x80 lor (n land 0x7f));
    write_uint buf (n lsr 7)
  end

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  write_uint buf n

(* Standard zigzag over OCaml's 63-bit ints: works for the whole range,
   including min_int. *)
let zigzag n = (n lsl 1) lxor (n asr 62)

let unzigzag n = (n lsr 1) lxor (-(n land 1))

let write_int buf n = write_uint buf (zigzag n)

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let write_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    write_u8 buf (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL))
  done

let write_list buf write_item items =
  write_varint buf (List.length items);
  List.iter (write_item buf) items

(* --- Reader --- *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let read_u8 r =
  if r.pos >= String.length r.data then fail "truncated input at offset %d" r.pos;
  let byte = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  byte

let read_uint r =
  let rec go shift acc =
    if shift > 63 then fail "varint overflow at offset %d" r.pos;
    let byte = read_u8 r in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_varint r =
  let n = read_uint r in
  if n < 0 then fail "negative length at offset %d" r.pos;
  n

let read_int r = unzigzag (read_uint r)

let read_string r =
  let len = read_varint r in
  if r.pos + len > String.length r.data then fail "truncated string at offset %d" r.pos;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (read_u8 r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_list r read_item =
  let n = read_varint r in
  List.init n (fun _ -> read_item r)

let at_end r = r.pos = String.length r.data

let remaining r = String.sub r.data r.pos (String.length r.data - r.pos)

(* Run a decoder over a whole payload, rejecting trailing bytes. *)
let with_reader data f =
  let r = reader data in
  let value = f r in
  if not (at_end r) then fail "trailing bytes after payload (offset %d)" r.pos;
  value

(* --- Oids --- *)

let write_oid buf oid =
  write_varint buf (Hf_data.Oid.birth_site oid);
  write_varint buf (Hf_data.Oid.serial oid);
  write_varint buf (Hf_data.Oid.hint oid)

let read_oid r =
  let birth_site = read_varint r in
  let serial = read_varint r in
  let hint = read_varint r in
  Hf_data.Oid.with_hint (Hf_data.Oid.make ~birth_site ~serial) hint

(* --- Values --- *)

let write_value buf value =
  match (value : Hf_data.Value.t) with
  | Str s ->
    write_u8 buf 0;
    write_string buf s
  | Num n ->
    write_u8 buf 1;
    write_int buf n
  | Real f ->
    write_u8 buf 2;
    write_float buf f
  | Ptr oid ->
    write_u8 buf 3;
    write_oid buf oid
  | Blob b ->
    write_u8 buf 4;
    write_string buf b

let read_value r : Hf_data.Value.t =
  match read_u8 r with
  | 0 -> Str (read_string r)
  | 1 -> Num (read_int r)
  | 2 -> Real (read_float r)
  | 3 -> Ptr (read_oid r)
  | 4 -> Blob (read_string r)
  | tag -> fail "unknown value tag %d" tag

(* --- Tuples and objects (used by the persistence layer and any future
   object-shipping extension) --- *)

let write_tuple buf tuple =
  write_string buf (Hf_data.Tuple.ttype tuple);
  write_value buf (Hf_data.Tuple.key tuple);
  write_value buf (Hf_data.Tuple.data tuple)

let read_tuple r =
  let ttype = read_string r in
  if String.length ttype = 0 then fail "empty tuple type tag";
  let key = read_value r in
  let data = read_value r in
  Hf_data.Tuple.make ~ttype ~key ~data

let write_hobject buf obj =
  write_oid buf (Hf_data.Hobject.oid obj);
  write_list buf write_tuple (Hf_data.Hobject.tuples obj)

let read_hobject r =
  let oid = read_oid r in
  let tuples = read_list r read_tuple in
  Hf_data.Hobject.of_tuples oid tuples

(* --- Patterns --- *)

let write_pattern buf pattern =
  match (pattern : Hf_query.Pattern.t) with
  | Any -> write_u8 buf 0
  | Exact v ->
    write_u8 buf 1;
    write_value buf v
  | Glob g ->
    write_u8 buf 2;
    write_string buf g
  | Range (lo, hi) ->
    write_u8 buf 3;
    write_int buf lo;
    write_int buf hi
  | Bind var ->
    write_u8 buf 4;
    write_string buf var
  | Use var ->
    write_u8 buf 5;
    write_string buf var

let read_pattern r : Hf_query.Pattern.t =
  match read_u8 r with
  | 0 -> Any
  | 1 -> Exact (read_value r)
  | 2 -> Glob (read_string r)
  | 3 ->
    let lo = read_int r in
    let hi = read_int r in
    if lo > hi then fail "empty range %d..%d" lo hi;
    Range (lo, hi)
  | 4 -> Bind (read_string r)
  | 5 -> Use (read_string r)
  | tag -> fail "unknown pattern tag %d" tag

(* --- Filters and programs --- *)

let write_filter buf filter =
  match (filter : Hf_query.Filter.t) with
  | Select { ttype; key; data } ->
    write_u8 buf 0;
    write_pattern buf ttype;
    write_pattern buf key;
    write_pattern buf data
  | Deref { var; mode } ->
    write_u8 buf 1;
    write_u8 buf (match mode with Hf_query.Filter.Replace -> 0 | Hf_query.Filter.Keep_parent -> 1);
    write_string buf var
  | Iter { body_start; count } ->
    write_u8 buf 2;
    write_varint buf body_start;
    (match count with
     | Hf_query.Filter.Star -> write_u8 buf 0
     | Hf_query.Filter.Finite k ->
       write_u8 buf 1;
       write_varint buf k)
  | Retrieve { ttype; key; target } ->
    write_u8 buf 3;
    write_pattern buf ttype;
    write_pattern buf key;
    write_string buf target

let read_filter r : Hf_query.Filter.t =
  match read_u8 r with
  | 0 ->
    let ttype = read_pattern r in
    let key = read_pattern r in
    let data = read_pattern r in
    Select { ttype; key; data }
  | 1 ->
    let mode =
      match read_u8 r with
      | 0 -> Hf_query.Filter.Replace
      | 1 -> Hf_query.Filter.Keep_parent
      | tag -> fail "unknown deref mode %d" tag
    in
    let var = read_string r in
    if String.length var = 0 then fail "empty deref variable";
    Deref { var; mode }
  | 2 ->
    let body_start = read_varint r in
    (match read_u8 r with
     | 0 -> Iter { body_start; count = Hf_query.Filter.Star }
     | 1 ->
       let k = read_varint r in
       if k < 1 then fail "iteration count %d < 1" k;
       Iter { body_start; count = Hf_query.Filter.Finite k }
     | tag -> fail "unknown iteration count tag %d" tag)
  | 3 ->
    let ttype = read_pattern r in
    let key = read_pattern r in
    let target = read_string r in
    if String.length target = 0 then fail "empty retrieve target";
    Retrieve { ttype; key; target }
  | tag -> fail "unknown filter tag %d" tag

let write_program buf program = write_list buf write_filter (Hf_query.Program.filters program)

let read_program r =
  let filters = read_list r read_filter in
  match Hf_query.Program.of_filters filters with
  | program -> program
  | exception Hf_query.Program.Ill_formed message -> fail "ill-formed program: %s" message

(* --- Messages --- *)

let write_query_id buf { Message.originator; serial } =
  write_varint buf originator;
  write_varint buf serial

let read_query_id r =
  let originator = read_varint r in
  let serial = read_varint r in
  { Message.originator; serial }

let write_credit buf credit = write_list buf write_varint credit

let read_credit r = read_list r read_varint

let write_iters buf iters =
  write_varint buf (Array.length iters);
  Array.iter (write_varint buf) iters

let read_iters r =
  let n = read_varint r in
  Array.init n (fun _ -> read_varint r)

let write_binding buf (target, values) =
  write_string buf target;
  write_list buf write_value values

let read_binding r =
  let target = read_string r in
  let values = read_list r read_value in
  (target, values)

let write_batch_item buf ({ oid; start; iters } : Message.batch_item) =
  write_oid buf oid;
  write_varint buf start;
  write_iters buf iters

let read_batch_item r : Message.batch_item =
  let oid = read_oid r in
  let start = read_varint r in
  let iters = read_iters r in
  { oid; start; iters }

let write_batch_group buf { Message.query; body; items; credit } =
  write_query_id buf query;
  write_program buf body;
  write_list buf write_batch_item items;
  write_credit buf credit

let read_batch_group r =
  let query = read_query_id r in
  let body = read_program r in
  let items = read_list r read_batch_item in
  if items = [] then fail "empty work-batch group";
  let credit = read_credit r in
  { Message.query; body; items; credit }

let write_cache_answer buf ({ oid; start; iters; passed } : Message.cache_answer) =
  write_oid buf oid;
  write_varint buf start;
  write_iters buf iters;
  write_u8 buf (if passed then 1 else 0)

let read_cache_answer r : Message.cache_answer =
  let oid = read_oid r in
  let start = read_varint r in
  let iters = read_iters r in
  let passed =
    match read_u8 r with
    | 0 -> false
    | 1 -> true
    | tag -> fail "unknown cache-answer verdict %d" tag
  in
  { oid; start; iters; passed }

let write_stat_value buf (value : Message.stat_value) =
  match value with
  | Stat_counter n ->
    write_u8 buf 0;
    write_int buf n
  | Stat_gauge v ->
    write_u8 buf 1;
    write_float buf v
  | Stat_histogram { count; sum; vmin; vmax; buckets } ->
    write_u8 buf 2;
    write_varint buf count;
    write_float buf sum;
    write_float buf vmin;
    write_float buf vmax;
    write_list buf
      (fun buf (i, n) ->
        write_varint buf i;
        write_varint buf n)
      buckets

let read_stat_value r : Message.stat_value =
  match read_u8 r with
  | 0 -> Stat_counter (read_int r)
  | 1 -> Stat_gauge (read_float r)
  | 2 ->
    let count = read_varint r in
    let sum = read_float r in
    let vmin = read_float r in
    let vmax = read_float r in
    let buckets =
      read_list r (fun r ->
          let i = read_varint r in
          let n = read_varint r in
          (i, n))
    in
    Stat_histogram { count; sum; vmin; vmax; buckets }
  | tag -> fail "unknown stat value tag %d" tag

let write_stat buf ({ name; value } : Message.stat) =
  write_string buf name;
  write_stat_value buf value

let read_stat r : Message.stat =
  let name = read_string r in
  if String.length name = 0 then fail "empty stat name";
  let value = read_stat_value r in
  { name; value }

let write_spawn buf (oid, start) =
  write_oid buf oid;
  write_varint buf start

let read_spawn r =
  let oid = read_oid r in
  let start = read_varint r in
  (oid, start)

let write_gather_node buf ({ oid; start; passed; visited; spawns; bindings } : Message.gather_node)
    =
  write_oid buf oid;
  write_varint buf start;
  write_u8 buf (if passed then 1 else 0);
  write_list buf write_varint visited;
  write_list buf write_spawn spawns;
  write_list buf write_binding bindings

let read_gather_node r : Message.gather_node =
  let oid = read_oid r in
  let start = read_varint r in
  let passed =
    match read_u8 r with
    | 0 -> false
    | 1 -> true
    | tag -> fail "unknown gather-node passed tag %d" tag
  in
  let visited = read_list r read_varint in
  let spawns = read_list r read_spawn in
  let bindings = read_list r read_binding in
  { oid; start; passed; visited; spawns; bindings }

let write_message buf message =
  match (message : Message.t) with
  | Deref_request { query; body; oid; start; iters; credit } ->
    write_u8 buf 0;
    write_query_id buf query;
    write_program buf body;
    write_oid buf oid;
    write_varint buf start;
    write_iters buf iters;
    write_credit buf credit
  | Work_batch groups ->
    if groups = [] then invalid_arg "Codec.write_message: empty Work_batch";
    write_u8 buf 3;
    write_list buf write_batch_group groups
  | Result { query; payload; bindings; credit } ->
    write_u8 buf 1;
    write_query_id buf query;
    (match payload with
     | Message.Items items ->
       write_u8 buf 0;
       write_list buf write_oid items
     | Message.Count n ->
       write_u8 buf 1;
       write_varint buf n);
    write_list buf write_binding bindings;
    write_credit buf credit
  | Credit_return { query; credit } ->
    write_u8 buf 2;
    write_query_id buf query;
    write_credit buf credit
  | Link_ack -> write_u8 buf 4
  | Site_unreachable { query; dead } ->
    write_u8 buf 5;
    write_query_id buf query;
    write_varint buf dead
  | Cache_validate { query; src } ->
    write_u8 buf 6;
    write_query_id buf query;
    write_varint buf src
  | Cache_version { query; site; version; epoch; summary } ->
    write_u8 buf 7;
    write_query_id buf query;
    write_varint buf site;
    write_varint buf version;
    write_varint buf epoch;
    (match summary with
     | None -> write_u8 buf 0
     | Some s ->
       write_u8 buf 1;
       write_string buf s)
  | Cache_answers { query; src; version; answers } ->
    if answers = [] then invalid_arg "Codec.write_message: empty Cache_answers";
    write_u8 buf 8;
    write_query_id buf query;
    write_varint buf src;
    write_varint buf version;
    write_list buf write_cache_answer answers
  | Query_done { query; src } ->
    write_u8 buf 9;
    write_query_id buf query;
    write_varint buf src
  | Stats_pull { src; token } ->
    write_u8 buf 10;
    write_varint buf src;
    write_varint buf token
  | Stats_report { src; token; stats } ->
    write_u8 buf 11;
    write_varint buf src;
    write_varint buf token;
    write_list buf write_stat stats
  | Scatter { query; body; roots; credit } ->
    write_u8 buf 12;
    write_query_id buf query;
    write_program buf body;
    write_list buf write_oid roots;
    write_credit buf credit
  | Gather_result { query; src; nodes; credit } ->
    write_u8 buf 13;
    write_query_id buf query;
    write_varint buf src;
    write_list buf write_gather_node nodes;
    write_credit buf credit

let read_message r : Message.t =
  match read_u8 r with
  | 0 ->
    let query = read_query_id r in
    let body = read_program r in
    let oid = read_oid r in
    let start = read_varint r in
    let iters = read_iters r in
    let credit = read_credit r in
    Deref_request { query; body; oid; start; iters; credit }
  | 1 ->
    let query = read_query_id r in
    let payload =
      match read_u8 r with
      | 0 -> Message.Items (read_list r read_oid)
      | 1 -> Message.Count (read_varint r)
      | tag -> fail "unknown result payload tag %d" tag
    in
    let bindings = read_list r read_binding in
    let credit = read_credit r in
    Result { query; payload; bindings; credit }
  | 2 ->
    let query = read_query_id r in
    let credit = read_credit r in
    Credit_return { query; credit }
  | 3 ->
    let groups = read_list r read_batch_group in
    if groups = [] then fail "empty work batch";
    Work_batch groups
  | 4 -> Link_ack
  | 5 ->
    let query = read_query_id r in
    let dead = read_varint r in
    Site_unreachable { query; dead }
  | 6 ->
    let query = read_query_id r in
    let src = read_varint r in
    Cache_validate { query; src }
  | 7 ->
    let query = read_query_id r in
    let site = read_varint r in
    let version = read_varint r in
    let epoch = read_varint r in
    let summary =
      match read_u8 r with
      | 0 -> None
      | 1 -> Some (read_string r)
      | tag -> fail "unknown summary presence tag %d" tag
    in
    Cache_version { query; site; version; epoch; summary }
  | 8 ->
    let query = read_query_id r in
    let src = read_varint r in
    let version = read_varint r in
    let answers = read_list r read_cache_answer in
    if answers = [] then fail "empty cache-answers";
    Cache_answers { query; src; version; answers }
  | 9 ->
    let query = read_query_id r in
    let src = read_varint r in
    Query_done { query; src }
  | 10 ->
    let src = read_varint r in
    let token = read_varint r in
    Stats_pull { src; token }
  | 11 ->
    let src = read_varint r in
    let token = read_varint r in
    let stats = read_list r read_stat in
    Stats_report { src; token; stats }
  | 12 ->
    let query = read_query_id r in
    let body = read_program r in
    let roots = read_list r read_oid in
    let credit = read_credit r in
    Scatter { query; body; roots; credit }
  | 13 ->
    let query = read_query_id r in
    let src = read_varint r in
    let nodes = read_list r read_gather_node in
    let credit = read_credit r in
    Gather_result { query; src; nodes; credit }
  | tag -> fail "unknown message tag %d" tag

(* A traced message is wrapped in an envelope: tag 127 (unused by any
   message variant), the originating span id as a varint, then the
   message encoded exactly as before.  Untraced encoding never emits
   the envelope, so wire bytes with tracing off are byte-for-byte the
   PR 1 format (and the ~40-byte query-message accounting still
   holds).

   A second, outer envelope (tag 126) carries reliable-delivery
   metadata: sender site, per-destination sequence number (0 =
   unsequenced) and the cumulative ack the sender piggybacks for the
   reverse direction.  Sites running without the reliability layer
   never emit it, so their wire bytes are unchanged too. *)
let traced_tag = 127

let rel_tag = 126

type rel = { src : int; seq : int; ack : int }

let encode ?span ?rel message =
  let buf = Buffer.create 64 in
  (match rel with
   | Some { src; seq; ack } ->
     write_u8 buf rel_tag;
     write_varint buf src;
     write_varint buf seq;
     write_varint buf ack
   | None -> ());
  (match span with
   | Some s when s <> 0 ->
     write_u8 buf traced_tag;
     write_varint buf s
   | _ -> ());
  write_message buf message;
  Buffer.contents buf

let read_enveloped_message r =
  let rel =
    if (not (at_end r)) && Char.code r.data.[r.pos] = rel_tag then begin
      r.pos <- r.pos + 1;
      let src = read_varint r in
      let seq = read_varint r in
      let ack = read_varint r in
      Some { src; seq; ack }
    end
    else None
  in
  let span =
    if (not (at_end r)) && Char.code r.data.[r.pos] = traced_tag then begin
      r.pos <- r.pos + 1;
      read_varint r
    end
    else 0
  in
  let message = read_message r in
  (message, span, rel)

let decode_enveloped data =
  match
    let r = reader data in
    let result = read_enveloped_message r in
    if not (at_end r) then fail "trailing bytes after message (offset %d)" r.pos;
    result
  with
  | result -> Ok result
  | exception Decode_error msg -> Error msg

let decode_traced data =
  match decode_enveloped data with
  | Ok (message, span, _rel) -> Ok (message, span)
  | Error _ as e -> e

let decode data =
  match decode_traced data with Ok (message, _span) -> Ok message | Error _ as e -> e

let decode_exn data =
  match decode data with Ok message -> message | Error msg -> raise (Decode_error msg)

let encoded_size message = String.length (encode message)
