(* Wire messages of the distributed query protocol (paper, Section 3.2).

   A remote dereference ships the query — not the data: the message
   carries Q.id, Q.originator, Q.body and Q.size from the query context,
   plus O.id, O.start and O.iter# for the object being dereferenced.
   Results flow directly to the originating site, tagged with Q.id.
   Termination-detection credit (the weighted-message algorithm)
   piggybacks on both.

   Credits travel as lists of atom exponents (see
   [Hf_termination.Credit.atoms]). *)

type query_id = { originator : int; serial : int }

let pp_query_id ppf { originator; serial } = Fmt.pf ppf "q%d@%d" serial originator

let equal_query_id a b = a.originator = b.originator && a.serial = b.serial

let compare_query_id a b =
  match Int.compare a.originator b.originator with
  | 0 -> Int.compare a.serial b.serial
  | c -> c

type deref_request = {
  query : query_id;
  body : Hf_query.Program.t;
  oid : Hf_data.Oid.t;
  start : int;
  iters : int array;
  credit : int list; (* credit atom exponents *)
}

(* Batched query shipping: several work items bound for the same site
   coalesce into one wire message.  Items are grouped by query so the
   program/query header is written once per group, not once per item,
   and each group carries a single credit share covering all its
   items. *)

type batch_item = {
  oid : Hf_data.Oid.t;
  start : int;
  iters : int array;
}

type batch_group = {
  query : query_id;
  body : Hf_query.Program.t;
  items : batch_item list; (* never empty on the wire *)
  credit : int list; (* one credit share for the whole group *)
}

type result_payload =
  | Items of Hf_data.Oid.t list
  | Count of int
      (** distributed-set mode (Section 5): ship the number of local
          results, keep the members server-side. *)

type result_message = {
  query : query_id;
  payload : result_payload;
  bindings : (string * Hf_data.Value.t list) list; (* -> operator values, by target *)
  credit : int list;
}

(* Remote-answer caching (DESIGN.md §4g).  A shipping site asks the
   destination for its current store version before reusing cached
   verdicts; the destination answers with the version and (optionally)
   its Bloom tuple summary; verdicts for cacheable items flow back to
   the query's originator opportunistically.  All three are control
   plane: they carry no credit and never enter termination detection. *)

type cache_answer = {
  oid : Hf_data.Oid.t;
  start : int;
  iters : int array;
  passed : bool;
}

(* Single-round scatter-gather (doc/execution_modes.md).  When the
   planner picks scatter mode, the originator broadcasts the program
   once to every predicted site ([Scatter], one credit split per site).
   The site evaluates its whole speculation domain — the roots it was
   handed plus every local object at each dereference landing index —
   each node against a fresh mark table, and ships the productive nodes
   back in one [Gather_result].  The originator then stitches: it walks
   spawn edges between gathered tables, reproducing classic mark
   suppression from the per-node visited sets, and falls back to
   classic query shipping for any edge that escapes the scattered site
   set — which is what keeps the result set identical to shipping. *)

type gather_node = {
  oid : Hf_data.Oid.t;
  start : int; (* the node's entry filter index *)
  passed : bool;
  visited : int list; (* filter indices the run marked, ascending *)
  spawns : (Hf_data.Oid.t * int) list; (* dereference edges: (target, landing index) *)
  bindings : (string * Hf_data.Value.t list) list; (* -> operator values emitted by this node *)
}

(* Cluster-wide stats scraping (DESIGN.md §4i).  Any site can ask a
   peer for a snapshot of its metrics registry; the reply carries the
   values as pure data — counters, gauges, and histograms reduced to
   their exact shape (no percentile reservoir crosses the wire).
   Credit-free and loss-tolerant like the cache messages: a dropped
   pull or report costs one stale scrape, never correctness. *)

type stat_value =
  | Stat_counter of int
  | Stat_gauge of float
  | Stat_histogram of {
      count : int;
      sum : float;
      vmin : float;
      vmax : float;
      buckets : (int * int) list; (* (bucket index, count), ascending *)
    }

type stat = { name : string; value : stat_value }

type t =
  | Deref_request of deref_request
  | Work_batch of batch_group list
      (** coalesced dereferences for one destination; never empty. *)
  | Result of result_message
  | Credit_return of { query : query_id; credit : int list }
      (** standalone credit return (used when a drained site has no
          results to ship). *)
  | Link_ack
      (* standalone cumulative acknowledgement: the value itself rides
         in the reliability envelope (Codec), so the body is empty.
         Sent only when no reverse traffic carried the ack in time. *)
  | Site_unreachable of { query : query_id; dead : int }
      (* retransmission to [dead] gave up: tell the originator the
         answer will be partial.  The reclaimed credit travels
         separately (Credit_return / Result), so termination detection
         still converges. *)
  | Cache_validate of { query : query_id; src : int }
      (** "what store version are you at?" — sent once per (query,
          destination) before the first ship, while the items wait
          parked at the sender. *)
  | Cache_version of {
      query : query_id;
      site : int;
      version : int;
      epoch : int;
          (** monotonic per-site summary-recompute counter; a regression
              means the peer restarted, so learned summaries from the
              old epoch must be dropped wholesale. *)
      summary : string option;
          (** the site's Bloom tuple summary ({!Hf_index.Bloom}'s wire
              form), piggybacked when it changed since last told. *)
    }
  | Cache_answers of {
      query : query_id;
      src : int;
      version : int;  (** store version the verdicts were computed at. *)
      answers : cache_answer list;  (** never empty on the wire. *)
    }
  | Query_done of { query : query_id; src : int }
      (* the originator detected termination (or cancelled): receivers
         evict the query's context and drop any still-parked items.
         Control plane — no credit, no termination effect; a loss only
         delays the eviction until the receiver's tombstone ages out. *)
  | Stats_pull of { src : int; token : int }
      (* "snapshot your registry for me."  [token] matches the reply to
         the request (a puller waiting on a fresh scrape ignores stale
         reports).  Belongs to no query — like Link_ack, pure control
         plane. *)
  | Stats_report of { src : int; token : int; stats : stat list }
      (* the answering site's registry snapshot; [token] echoes the
         pull's (0 for an unsolicited/periodic push). *)
  | Scatter of {
      query : query_id;
      body : Hf_query.Program.t;
      roots : Hf_data.Oid.t list; (* seed oids located at the receiver *)
      credit : int list; (* one credit share for the whole scatter *)
    }
  | Gather_result of {
      query : query_id;
      src : int;
      nodes : gather_node list; (* productive speculation nodes only *)
      credit : int list;
          (* every credit atom the scattered site held, returned with
             the gather so credit can never overtake the nodes it
             covers *)
    }

let query_of = function
  | Deref_request { query; _ } -> query
  | Work_batch ({ query; _ } :: _) -> query
  | Work_batch [] -> invalid_arg "Message.query_of: empty Work_batch"
  | Result { query; _ } -> query
  | Credit_return { query; _ } -> query
  | Link_ack -> invalid_arg "Message.query_of: Link_ack carries no query"
  | Site_unreachable { query; _ } -> query
  | Cache_validate { query; _ } -> query
  | Cache_version { query; _ } -> query
  | Cache_answers { query; _ } -> query
  | Query_done { query; _ } -> query
  | Stats_pull _ -> invalid_arg "Message.query_of: Stats_pull carries no query"
  | Stats_report _ -> invalid_arg "Message.query_of: Stats_report carries no query"
  | Scatter { query; _ } -> query
  | Gather_result { query; _ } -> query

let pp ppf = function
  | Deref_request { query; oid; start; iters; _ } ->
    Fmt.pf ppf "deref[%a] oid=%a start=%d iters=[%a]" pp_query_id query Hf_data.Oid.pp oid start
      Fmt.(array ~sep:(any ";") int)
      iters
  | Work_batch groups ->
    Fmt.pf ppf "work-batch[%a] %d group(s), %d item(s)"
      Fmt.(list ~sep:(any ",") pp_query_id)
      (List.map (fun (g : batch_group) -> g.query) groups)
      (List.length groups)
      (List.fold_left (fun acc (g : batch_group) -> acc + List.length g.items) 0 groups)
  | Result { query; payload = Items items; bindings; _ } ->
    Fmt.pf ppf "result[%a] %d items, %d targets" pp_query_id query (List.length items)
      (List.length bindings)
  | Result { query; payload = Count n; _ } -> Fmt.pf ppf "result[%a] count=%d" pp_query_id query n
  | Credit_return { query; _ } -> Fmt.pf ppf "credit-return[%a]" pp_query_id query
  | Link_ack -> Fmt.string ppf "link-ack"
  | Site_unreachable { query; dead } ->
    Fmt.pf ppf "site-unreachable[%a] dead=%d" pp_query_id query dead
  | Cache_validate { query; src } ->
    Fmt.pf ppf "cache-validate[%a] src=%d" pp_query_id query src
  | Cache_version { query; site; version; epoch; summary } ->
    Fmt.pf ppf "cache-version[%a] site=%d v=%d e=%d%s" pp_query_id query site version epoch
      (match summary with Some s -> Fmt.str " summary=%dB" (String.length s) | None -> "")
  | Cache_answers { query; src; version; answers } ->
    Fmt.pf ppf "cache-answers[%a] src=%d v=%d %d answer(s)" pp_query_id query src version
      (List.length answers)
  | Query_done { query; src } -> Fmt.pf ppf "query-done[%a] src=%d" pp_query_id query src
  | Stats_pull { src; token } -> Fmt.pf ppf "stats-pull src=%d token=%d" src token
  | Stats_report { src; token; stats } ->
    Fmt.pf ppf "stats-report src=%d token=%d %d metric(s)" src token (List.length stats)
  | Scatter { query; roots; _ } ->
    Fmt.pf ppf "scatter[%a] %d root(s)" pp_query_id query (List.length roots)
  | Gather_result { query; src; nodes; _ } ->
    Fmt.pf ppf "gather[%a] src=%d %d node(s)" pp_query_id query src (List.length nodes)

let equal_cache_answer (x : cache_answer) (y : cache_answer) =
  Hf_data.Oid.equal x.oid y.oid
  && x.start = y.start
  && Array.length x.iters = Array.length y.iters
  && Array.for_all2 ( = ) x.iters y.iters
  && x.passed = y.passed

let equal_batch_item (x : batch_item) (y : batch_item) =
  Hf_data.Oid.equal x.oid y.oid
  && x.start = y.start
  && Array.length x.iters = Array.length y.iters
  && Array.for_all2 ( = ) x.iters y.iters

let equal_batch_group (x : batch_group) (y : batch_group) =
  equal_query_id x.query y.query
  && Hf_query.Program.equal x.body y.body
  && List.length x.items = List.length y.items
  && List.for_all2 equal_batch_item x.items y.items
  && x.credit = y.credit

let equal_stat_value (x : stat_value) (y : stat_value) =
  match x, y with
  | Stat_counter m, Stat_counter n -> m = n
  | Stat_gauge a, Stat_gauge b -> Float.equal a b (* NaN-safe: gauges may carry NaN *)
  | Stat_histogram a, Stat_histogram b ->
    a.count = b.count
    && Float.equal a.sum b.sum
    && Float.equal a.vmin b.vmin
    && Float.equal a.vmax b.vmax
    && a.buckets = b.buckets
  | (Stat_counter _ | Stat_gauge _ | Stat_histogram _), _ -> false

let equal_stat (x : stat) (y : stat) =
  String.equal x.name y.name && equal_stat_value x.value y.value

let equal_bindings a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ta, va) (tb, vb) ->
         String.equal ta tb
         && List.length va = List.length vb
         && List.for_all2 Hf_data.Value.equal va vb)
       a b

let equal_gather_node (x : gather_node) (y : gather_node) =
  Hf_data.Oid.equal x.oid y.oid
  && x.start = y.start
  && x.passed = y.passed
  && x.visited = y.visited
  && List.length x.spawns = List.length y.spawns
  && List.for_all2
       (fun (oa, sa) (ob, sb) -> Hf_data.Oid.equal oa ob && sa = sb)
       x.spawns y.spawns
  && equal_bindings x.bindings y.bindings

let equal a b =
  match a, b with
  | Deref_request x, Deref_request y ->
    equal_query_id x.query y.query
    && Hf_query.Program.equal x.body y.body
    && Hf_data.Oid.equal x.oid y.oid
    && x.start = y.start
    && Array.length x.iters = Array.length y.iters
    && Array.for_all2 ( = ) x.iters y.iters
    && x.credit = y.credit
  | Result x, Result y ->
    equal_query_id x.query y.query
    && (match x.payload, y.payload with
        | Items xs, Items ys ->
          List.length xs = List.length ys && List.for_all2 Hf_data.Oid.equal xs ys
        | Count m, Count n -> m = n
        | (Items _ | Count _), _ -> false)
    && List.length x.bindings = List.length y.bindings
    && List.for_all2
         (fun (ta, va) (tb, vb) ->
           String.equal ta tb
           && List.length va = List.length vb
           && List.for_all2 Hf_data.Value.equal va vb)
         x.bindings y.bindings
    && x.credit = y.credit
  | Work_batch xs, Work_batch ys ->
    List.length xs = List.length ys && List.for_all2 equal_batch_group xs ys
  | Credit_return x, Credit_return y -> equal_query_id x.query y.query && x.credit = y.credit
  | Link_ack, Link_ack -> true
  | Site_unreachable x, Site_unreachable y ->
    equal_query_id x.query y.query && x.dead = y.dead
  | Cache_validate x, Cache_validate y ->
    equal_query_id x.query y.query && x.src = y.src
  | Cache_version x, Cache_version y ->
    equal_query_id x.query y.query
    && x.site = y.site
    && x.version = y.version
    && x.epoch = y.epoch
    && Option.equal String.equal x.summary y.summary
  | Cache_answers x, Cache_answers y ->
    equal_query_id x.query y.query
    && x.src = y.src
    && x.version = y.version
    && List.length x.answers = List.length y.answers
    && List.for_all2 equal_cache_answer x.answers y.answers
  | Query_done x, Query_done y -> equal_query_id x.query y.query && x.src = y.src
  | Stats_pull x, Stats_pull y -> x.src = y.src && x.token = y.token
  | Stats_report x, Stats_report y ->
    x.src = y.src
    && x.token = y.token
    && List.length x.stats = List.length y.stats
    && List.for_all2 equal_stat x.stats y.stats
  | Scatter x, Scatter y ->
    equal_query_id x.query y.query
    && Hf_query.Program.equal x.body y.body
    && List.length x.roots = List.length y.roots
    && List.for_all2 Hf_data.Oid.equal x.roots y.roots
    && x.credit = y.credit
  | Gather_result x, Gather_result y ->
    equal_query_id x.query y.query
    && x.src = y.src
    && List.length x.nodes = List.length y.nodes
    && List.for_all2 equal_gather_node x.nodes y.nodes
    && x.credit = y.credit
  | (Deref_request _ | Work_batch _ | Result _ | Credit_return _ | Link_ack
    | Site_unreachable _ | Cache_validate _ | Cache_version _ | Cache_answers _
    | Query_done _ | Stats_pull _ | Stats_report _ | Scatter _ | Gather_result _), _ ->
    false
