(** Wire messages of the distributed query protocol (paper, Section 3.2).

    A remote dereference ships the query, not the data: Q.id,
    Q.originator, Q.body, Q.size plus O.id, O.start, O.iter#.  Results
    flow directly to the originating site.  Weighted-termination credit
    piggybacks on both, as lists of atom exponents. *)

type query_id = {
  originator : int;  (** site at which the query was issued. *)
  serial : int;  (** identifier assigned by the originating site. *)
}

val pp_query_id : Format.formatter -> query_id -> unit
val equal_query_id : query_id -> query_id -> bool
val compare_query_id : query_id -> query_id -> int

type deref_request = {
  query : query_id;
  body : Hf_query.Program.t;
  oid : Hf_data.Oid.t;
  start : int;
  iters : int array;
  credit : int list;
}

type result_payload =
  | Items of Hf_data.Oid.t list
  | Count of int
      (** distributed-set mode (Section 5): ship only the number of local
          results. *)

type result_message = {
  query : query_id;
  payload : result_payload;
  bindings : (string * Hf_data.Value.t list) list;
  credit : int list;
}

type batch_item = {
  oid : Hf_data.Oid.t;
  start : int;
  iters : int array;
}

type batch_group = {
  query : query_id;
  body : Hf_query.Program.t;
  items : batch_item list;  (** never empty on the wire. *)
  credit : int list;  (** one credit share covering every item. *)
}
(** Batched query shipping: dereferences bound for the same site share
    one wire message; the program/query header is written once per
    group, amortized over its items. *)

type cache_answer = {
  oid : Hf_data.Oid.t;
  start : int;
  iters : int array;
  passed : bool;
}
(** One memoizable verdict: the named work item, evaluated at the
    answering site, passed or failed (DESIGN.md §4g). *)

type stat_value =
  | Stat_counter of int
  | Stat_gauge of float
  | Stat_histogram of {
      count : int;
      sum : float;
      vmin : float;
      vmax : float;
      buckets : (int * int) list;  (** (bucket index, count), ascending. *)
    }
(** One metric value as pure wire data (DESIGN.md §4i).  Histograms
    ship their exact shape — count/sum/min/max and bucket counts — but
    never the percentile reservoir. *)

type stat = { name : string; value : stat_value }

type gather_node = {
  oid : Hf_data.Oid.t;
  start : int;  (** the node's entry filter index. *)
  passed : bool;
  visited : int list;  (** filter indices the run marked, ascending. *)
  spawns : (Hf_data.Oid.t * int) list;
      (** dereference edges: (target oid, landing filter index). *)
  bindings : (string * Hf_data.Value.t list) list;
      (** [->] operator values this node emitted, by target variable. *)
}
(** One speculatively evaluated (object, start index) node of a
    scattered site's domain, as shipped home in a {!Gather_result}
    (doc/execution_modes.md).  Only productive nodes — passed, spawned
    a dereference, or emitted bindings — cross the wire. *)

type t =
  | Deref_request of deref_request
  | Work_batch of batch_group list
      (** coalesced dereferences for one destination; never empty. *)
  | Result of result_message
  | Credit_return of { query : query_id; credit : int list }
  | Link_ack
      (** standalone cumulative acknowledgement; the ack value rides in
          the reliability envelope ({!Codec.encode}), so the body is
          empty.  Sent only when no reverse traffic carried the ack
          within the delayed-ack window. *)
  | Site_unreachable of { query : query_id; dead : int }
      (** retransmission to [dead] exhausted its retries: the
          originator's answer will be partial.  Reclaimed credit
          travels separately so termination still converges. *)
  | Cache_validate of { query : query_id; src : int }
      (** "what store version are you at?" — sent once per (query,
          destination) before the first ship while the sender parks its
          items.  Control plane: no credit, no termination effect. *)
  | Cache_version of {
      query : query_id;
      site : int;
      version : int;
      epoch : int;
          (** monotonic per-site summary-recompute counter; a regression
              tells the receiver the peer restarted and its learned
              summaries (and Bloofi leaf) are from a dead lineage. *)
      summary : string option;
          (** the site's Bloom tuple summary in [Hf_index.Bloom]'s wire
              form, piggybacked when it changed since last told. *)
    }  (** Answer to [Cache_validate]. *)
  | Cache_answers of {
      query : query_id;
      src : int;
      version : int;  (** store version the verdicts were computed at. *)
      answers : cache_answer list;  (** never empty on the wire. *)
    }
      (** Opportunistic fill: verdicts for cacheable items a remote
          site evaluated, sent to the query's originator.  Loss only
          loses future cache hits, never correctness. *)
  | Query_done of { query : query_id; src : int }
      (** The originator detected termination (or the caller cancelled):
          receivers evict the query's per-site context and drop parked
          items.  Control plane: no credit, no termination effect — by
          the time it is sent the detector has already converged, so a
          loss merely delays the eviction. *)
  | Stats_pull of { src : int; token : int }
      (** "snapshot your registry for me."  [token] matches the reply
          to the request.  Belongs to no query — pure control plane,
          credit-free and loss-tolerant: a dropped pull costs one stale
          scrape, never correctness. *)
  | Stats_report of { src : int; token : int; stats : stat list }
      (** the answering site's registry snapshot; [token] echoes the
          pull's (0 for an unsolicited periodic push). *)
  | Scatter of {
      query : query_id;
      body : Hf_query.Program.t;
      roots : Hf_data.Oid.t list;  (** seed oids located at the receiver. *)
      credit : int list;  (** one credit share for the whole scatter. *)
    }
      (** Scatter-gather mode, outbound half: the originator broadcasts
          the program once to each predicted site, which evaluates its
          whole speculation domain locally and answers with a single
          {!Gather_result} — one network round instead of one per
          dereference hop. *)
  | Gather_result of {
      query : query_id;
      src : int;
      nodes : gather_node list;  (** productive speculation nodes only. *)
      credit : int list;
          (** every credit atom the scattered site held, returned with
              the gather so credit can never overtake the nodes it
              covers. *)
    }  (** Scatter-gather mode, inbound half. *)

val equal_batch_item : batch_item -> batch_item -> bool
val equal_batch_group : batch_group -> batch_group -> bool
val equal_cache_answer : cache_answer -> cache_answer -> bool
val equal_stat_value : stat_value -> stat_value -> bool
val equal_stat : stat -> stat -> bool
val equal_gather_node : gather_node -> gather_node -> bool

val query_of : t -> query_id
(** For [Work_batch] this is the first group's query (the query the
    message is charged to).  Raises [Invalid_argument] on an empty
    batch and on [Link_ack], [Stats_pull] and [Stats_report], which
    belong to a link or the site, not a query. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
