(* Reliable-delivery state machine for one directed peer link.

   Sender half: sequence assignment, an in-order queue of
   unacknowledged payloads, one retransmit timer for the whole link
   (go-back-N style: a timeout resends everything outstanding — the
   receiver's dedup makes redundant copies free).  The timeout backs
   off geometrically and a retry cap turns the link unreachable.

   Receiver half: cumulative ack = highest contiguous sequence
   received, plus a sparse set of out-of-order arrivals above it.  Acks
   are owed lazily: every outgoing envelope carries the current
   cumulative ack, and only when no reverse traffic shows up within
   [ack_delay] does [poll] ask for a standalone ack message.

   No clock, no I/O: callers pass [now] and perform the actions [poll]
   returns, so the same machine runs in virtual time (simulator) and
   wall time (TCP ticker thread). *)

type config = {
  ack_timeout : float;
  backoff : float;
  max_timeout : float;
  max_retries : int;
  ack_delay : float;
}

let default =
  { ack_timeout = 0.5; backoff = 2.0; max_timeout = 5.0; max_retries = 12; ack_delay = 0.05 }

let validate config =
  if config.ack_timeout <= 0.0 then invalid_arg "Reliable: ack_timeout must be positive";
  if config.backoff < 1.0 then invalid_arg "Reliable: backoff must be >= 1";
  if config.max_timeout < config.ack_timeout then
    invalid_arg "Reliable: max_timeout must be >= ack_timeout";
  if config.max_retries < 0 then invalid_arg "Reliable: max_retries must be >= 0";
  if config.ack_delay < 0.0 then invalid_arg "Reliable: ack_delay must be >= 0"

module Int_set = Set.Make (Int)

type 'a pending = { seq : int; payload : 'a; first_sent : float }

type 'a t = {
  config : config;
  (* sender half *)
  mutable next_seq : int;
  mutable pending : 'a pending list; (* oldest first *)
  mutable rto : float; (* current retransmit timeout *)
  mutable retries : int; (* consecutive timeout rounds without an ack *)
  mutable rtx_deadline : float option;
  mutable dead : bool;
  (* receiver half *)
  mutable cum : int; (* highest contiguous sequence received *)
  mutable above : Int_set.t; (* out-of-order arrivals > cum *)
  mutable owed : bool;
  mutable ack_deadline : float;
  (* instrumentation *)
  mutable retransmitted : int;
  mutable duplicates : int;
}

let create config =
  validate config;
  {
    config;
    next_seq = 1;
    pending = [];
    rto = config.ack_timeout;
    retries = 0;
    rtx_deadline = None;
    dead = false;
    cum = 0;
    above = Int_set.empty;
    owed = false;
    ack_deadline = 0.0;
    retransmitted = 0;
    duplicates = 0;
  }

(* --- sender half --- *)

let send t ~now payload =
  if t.dead then invalid_arg "Reliable.send: link unreachable";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.pending <- t.pending @ [ { seq; payload; first_sent = now } ];
  if t.rtx_deadline = None then t.rtx_deadline <- Some (now +. t.rto);
  seq

let on_ack t ~now n =
  let acked, rest = List.partition (fun p -> p.seq <= n) t.pending in
  if acked <> [] then begin
    t.pending <- rest;
    (* Progress: reset the backoff, re-arm for whatever is still out. *)
    t.rto <- t.config.ack_timeout;
    t.retries <- 0;
    t.rtx_deadline <- (if rest = [] then None else Some (now +. t.rto))
  end;
  List.map (fun p -> now -. p.first_sent) acked

let in_flight t = List.length t.pending

let unreachable t = t.dead

(* --- receiver half --- *)

let owe_ack t ~now =
  if not t.owed then begin
    t.owed <- true;
    t.ack_deadline <- now +. t.config.ack_delay
  end

let receive t ~now ~seq =
  if seq <= 0 then invalid_arg "Reliable.receive: sequence numbers start at 1";
  owe_ack t ~now;
  if seq <= t.cum || Int_set.mem seq t.above then begin
    t.duplicates <- t.duplicates + 1;
    `Duplicate
  end
  else begin
    t.above <- Int_set.add seq t.above;
    while Int_set.mem (t.cum + 1) t.above do
      t.above <- Int_set.remove (t.cum + 1) t.above;
      t.cum <- t.cum + 1
    done;
    `Fresh
  end

let take_ack t =
  t.owed <- false;
  t.cum

let ack_owed t = t.owed

(* --- timers --- *)

let next_deadline t =
  let ack = if t.owed then Some t.ack_deadline else None in
  match t.rtx_deadline, ack with
  | None, deadline | deadline, None -> deadline
  | Some a, Some b -> Some (Float.min a b)

type 'a action =
  | Retransmit of (int * 'a) list
  | Send_ack
  | Give_up of (int * 'a) list

let poll t ~now =
  let acks = if t.owed && t.ack_deadline <= now then [ Send_ack ] else [] in
  let sends =
    match t.rtx_deadline with
    | Some deadline when deadline <= now && t.pending <> [] ->
      if t.retries >= t.config.max_retries then begin
        let lost = List.map (fun p -> (p.seq, p.payload)) t.pending in
        t.dead <- true;
        t.pending <- [];
        t.rtx_deadline <- None;
        [ Give_up lost ]
      end
      else begin
        t.retries <- t.retries + 1;
        t.retransmitted <- t.retransmitted + List.length t.pending;
        t.rto <- Float.min (t.rto *. t.config.backoff) t.config.max_timeout;
        t.rtx_deadline <- Some (now +. t.rto);
        [ Retransmit (List.map (fun p -> (p.seq, p.payload)) t.pending) ]
      end
    | Some deadline when deadline <= now ->
      (* everything was acked since the timer was armed *)
      t.rtx_deadline <- None;
      []
    | Some _ | None -> []
  in
  acks @ sends

(* --- instrumentation --- *)

let retransmitted t = t.retransmitted

let duplicates t = t.duplicates
