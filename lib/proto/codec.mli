(** Binary codec for the wire protocol.

    Unsigned LEB128 varints for lengths, zigzag varints for signed
    integers, IEEE-754 bits for floats, one-byte variant tags,
    length-prefixed strings.  Platform-independent; no [Marshal]. *)

exception Decode_error of string

type rel = { src : int; seq : int; ack : int }
(** Reliable-delivery envelope: sending site, per-destination sequence
    number ([0] = unsequenced, e.g. a standalone [Link_ack]) and the
    cumulative ack piggybacked for the reverse direction (see
    {!Reliable}). *)

val encode : ?span:int -> ?rel:rel -> Message.t -> string
(** With [?span] absent, [None], or [Some 0], and [?rel] absent, the
    encoding is byte-identical to the plain wire format.  A non-zero
    span id is carried in an envelope (tag 127 + varint) so a receiving
    tracer can parent its spans on the sender's; reliability metadata
    rides in an outer envelope (tag 126 + three varints). *)

val decode : string -> (Message.t, string) result
(** Rejects trailing bytes.  Accepts (and discards) traced and
    reliability envelopes. *)

val decode_traced : string -> (Message.t * int, string) result
(** Like {!decode} but also returns the carried span id (0 when the
    message was sent untraced). *)

val decode_enveloped : string -> (Message.t * int * rel option, string) result
(** Like {!decode_traced} but also returns the reliability envelope
    when present. *)

val decode_exn : string -> Message.t
(** Raises [Decode_error]. *)

val encoded_size : Message.t -> int
(** Size of the encoded form in bytes (the paper's ~40-byte query
    messages; checked in the benchmarks). *)

(** {1 Sub-codecs} exposed for property tests. *)

type writer = Buffer.t
type reader

val reader : string -> reader
val at_end : reader -> bool

val remaining : reader -> string
(** Bytes not yet consumed. *)

val with_reader : string -> (reader -> 'a) -> 'a
(** Decode a whole payload; raises [Decode_error] on trailing bytes. *)

val write_varint : writer -> int -> unit
(** Unsigned LEB128. Raises [Invalid_argument] on negatives. *)

val read_varint : reader -> int

val write_value : writer -> Hf_data.Value.t -> unit
val read_value : reader -> Hf_data.Value.t

val write_oid : writer -> Hf_data.Oid.t -> unit
val read_oid : reader -> Hf_data.Oid.t

val write_tuple : writer -> Hf_data.Tuple.t -> unit
val read_tuple : reader -> Hf_data.Tuple.t

val write_hobject : writer -> Hf_data.Hobject.t -> unit
val read_hobject : reader -> Hf_data.Hobject.t

val write_pattern : writer -> Hf_query.Pattern.t -> unit
val read_pattern : reader -> Hf_query.Pattern.t

val write_filter : writer -> Hf_query.Filter.t -> unit
val read_filter : reader -> Hf_query.Filter.t

val write_program : writer -> Hf_query.Program.t -> unit
val read_program : reader -> Hf_query.Program.t

val write_stat : writer -> Message.stat -> unit
val read_stat : reader -> Message.stat
