(** Reliable-delivery state machine for one directed peer link.

    The query-shipping protocol (paper, Section 3.2) assumes messages
    arrive; this module supplies that assumption over a lossy transport.
    One ['a t] lives at each endpoint of an ordered site pair and holds
    both halves of the link:

    - the {e sender} half assigns per-destination sequence numbers,
      keeps sent-but-unacknowledged payloads, and retransmits them on
      ack timeout with exponential backoff until a retry cap declares
      the peer unreachable;
    - the {e receiver} half tracks the highest contiguous sequence
      received (the cumulative ack, piggybacked on reverse traffic the
      way Section 3.2 piggybacks credit) plus a sparse set of
      out-of-order arrivals, so redelivered messages are recognized and
      dropped — retransmission never double-evaluates work or
      double-returns credit.

    The module owns no clock and no wire: callers pass [now] in, and
    {!poll} returns the actions (retransmit / standalone ack / give up)
    the caller must perform.  The same state machine therefore runs
    under the discrete-event simulator (virtual time, timer events on
    the event queue) and the TCP transport (wall time, a ticker
    thread). *)

type config = {
  ack_timeout : float;  (** initial retransmit timeout (seconds). *)
  backoff : float;  (** timeout multiplier per retry round ([>= 1]). *)
  max_timeout : float;  (** cap on the backed-off timeout. *)
  max_retries : int;
      (** retransmission rounds without progress before the peer is
          declared unreachable. *)
  ack_delay : float;
      (** how long the receiver may hold a pending ack hoping to
          piggyback it on reverse traffic before sending it
          standalone. *)
}

val default : config
(** 0.5 s initial timeout, doubling to a 5 s cap, 12 retries, 50 ms
    delayed ack — give-up after roughly a minute of silence. *)

val validate : config -> unit
(** Raises [Invalid_argument] on non-positive timeouts, [backoff < 1]
    or negative retries. *)

type 'a t

val create : config -> 'a t

(** {1 Sender half} *)

val send : 'a t -> now:float -> 'a -> int
(** Assign the next sequence number (numbering starts at 1) to
    [payload], retain it for retransmission, and arm the ack timer.
    Raises [Invalid_argument] if the link is already {!unreachable} —
    callers must check first and fail the message instead. *)

val on_ack : 'a t -> now:float -> int -> float list
(** Process a cumulative ack: every retained payload with sequence
    [<= n] is delivered and forgotten.  Returns the ack latency
    (seconds since first transmission) of each newly acknowledged
    message; progress resets the backoff. *)

val in_flight : 'a t -> int
(** Sent-but-unacknowledged messages currently retained. *)

val unreachable : 'a t -> bool
(** The retry cap fired; the link no longer accepts {!send}. *)

(** {1 Receiver half} *)

val receive : 'a t -> now:float -> seq:int -> [ `Fresh | `Duplicate ]
(** Record an arriving sequence number.  [`Duplicate] means the message
    was already delivered once (or is buffered out of order) and must
    be dropped by the caller.  Either way an ack becomes owed — a
    duplicate usually means the previous ack was lost, so it is
    re-acknowledged. *)

val take_ack : 'a t -> int
(** The cumulative ack to stamp on an outgoing message (highest
    contiguous sequence received; 0 before anything arrived).  Clears
    the owed-ack state: callers stamp every outgoing envelope, so any
    reverse traffic carries the ack for free. *)

val ack_owed : 'a t -> bool

(** {1 Timers} *)

val next_deadline : 'a t -> float option
(** Earliest time {!poll} will have something to do: the retransmit
    deadline of the oldest unacknowledged message, or the delayed-ack
    deadline, whichever comes first.  [None] when the link is idle. *)

type 'a action =
  | Retransmit of (int * 'a) list
      (** resend these (sequence, payload) pairs, stamping a fresh
          cumulative ack. *)
  | Send_ack
      (** no reverse traffic carried the ack in time: send a standalone
          ack message (its cumulative value comes from {!take_ack}). *)
  | Give_up of (int * 'a) list
      (** the retry cap fired: the link is now {!unreachable} and these
          payloads will never be delivered — reclaim what they carried
          (e.g. return their termination credit). *)

val poll : 'a t -> now:float -> 'a action list
(** Fire every deadline at or before [now]; safe to call spuriously. *)

(** {1 Instrumentation} *)

val retransmitted : 'a t -> int
(** Total payload retransmissions performed over the link's lifetime. *)

val duplicates : 'a t -> int
(** Arrivals reported [`Duplicate]. *)
