(* Exact dyadic credit arithmetic for the weighted-message termination
   algorithm.  A credit is a finite multiset of atoms, each atom worth
   2^-k; the whole computation starts with the single atom 2^0 = 1 held
   by the originating site.  Splitting replaces an atom 2^-k by two atoms
   2^-(k+1); merging does the reverse.  Because exponents are unbounded
   OCaml ints, credit never "runs out" no matter how long a pointer chain
   grows — no borrowing protocol is needed and the arithmetic is exact,
   so termination is detected iff all credit returns.

   Representation: a map from exponent k to the number of atoms of value
   2^-k, kept normalized (every count is 1 — pairs carry into k-1), which
   makes equality and the is-one test trivial. *)

module Int_map = Map.Make (Int)

type t = int Int_map.t (* exponent -> count, normalized: counts are all 1 *)

let zero = Int_map.empty

let one = Int_map.singleton 0 1

let is_zero t = Int_map.is_empty t

let is_one t = Int_map.equal Int.equal t one

let equal = Int_map.equal Int.equal

(* Carry pairs of atoms upward: 2 * 2^-k = 2^-(k-1).  Exponent 0 with a
   count of 2 would mean total credit > 1, which no legal execution can
   produce; [normalize] asserts it away. *)
let rec normalize t =
  let carry = Int_map.filter (fun _ count -> count >= 2) t in
  if Int_map.is_empty carry then t
  else begin
    let t =
      Int_map.fold
        (fun k count acc ->
          assert (k > 0 || count < 2);
          let acc = Int_map.add k (count mod 2) acc in
          let acc = if count mod 2 = 0 then Int_map.remove k acc else acc in
          let prev = match Int_map.find_opt (k - 1) acc with None -> 0 | Some c -> c in
          Int_map.add (k - 1) (prev + (count / 2)) acc)
        carry t
    in
    normalize t
  end

let add a b =
  let merged =
    Int_map.union (fun _ ca cb -> Some (ca + cb)) a b
  in
  normalize merged

(* Split off a piece to attach to an outgoing message: halve the smallest
   atom (largest exponent).  This keeps the holder's big atoms intact, so
   its credit stays "chunky" and merge chains stay short. *)
let split t =
  match Int_map.max_binding_opt t with
  | None -> invalid_arg "Credit.split: cannot split zero credit"
  | Some (k, _count) ->
    let rest = Int_map.remove k t in
    let keep = add rest (Int_map.singleton (k + 1) 1) in
    let gave = Int_map.singleton (k + 1) 1 in
    (keep, gave)

let atoms t = Int_map.fold (fun k count acc -> List.init count (fun _ -> k) @ acc) t [] |> List.sort compare

let of_atoms ks =
  normalize
    (List.fold_left
       (fun acc k ->
         if k < 0 then invalid_arg "Credit.of_atoms: negative exponent";
         let prev = match Int_map.find_opt k acc with None -> 0 | Some c -> c in
         Int_map.add k (prev + 1) acc)
       Int_map.empty ks)

(* Sanctioned explicit loss: the value is simply dropped, but through a
   named sink so the static checker (and a human reader) can see every
   place credit leaves the accounting on purpose. *)
let discard (_ : t) = ()

(* Approximate numeric value, for diagnostics only (underflows for deep
   exponents — never used for decisions). *)
let to_float t = Int_map.fold (fun k count acc -> acc +. (float_of_int count *. (2.0 ** float_of_int (-k)))) t 0.0

let max_exponent t = match Int_map.max_binding_opt t with None -> None | Some (k, _) -> Some k

let pp ppf t =
  if is_zero t then Fmt.string ppf "0"
  else
    Fmt.list ~sep:(Fmt.any "+") (fun ppf k -> Fmt.pf ppf "2^-%d" k) ppf (atoms t)
