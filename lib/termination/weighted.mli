(** Weighted-message (credit-recovery) termination detection — the
    algorithm used by the paper's prototype.

    The origin starts with credit 1; every work message carries a split
    of the sender's credit; a draining site returns all held credit to
    the origin (riding on the result message in the real protocol).
    Termination is known exactly when the origin's recovered credit
    normalizes back to 1. *)

type tag = Credit.t

type control = Return of Credit.t

include Detector.S with type tag := tag and type control := control

(** {1 Instrumentation} *)

val held : t -> Credit.t
val recovered : t -> Credit.t

val splits : t -> int
(** Number of credit splits performed (one per work message sent). *)

val return_messages : t -> int
(** Number of credit-return control messages emitted by this site. *)

val deepest_split : t -> int
(** Largest atom exponent ever given away by this site — how finely the
    query's fan-out diced the unit credit (an atom of exponent [k] is
    worth 2{^-k}). *)

val register : ?prefix:string -> t -> Hf_obs.Registry.t -> unit
(** Install the split/return counters as views in [registry] under
    [prefix] (default ["hf.termination"]). *)
