(* Dijkstra–Scholten diffusing-computation termination detection,
   included as a comparison point for the ablation bench (E11).

   Every work message must eventually be acknowledged.  The first work
   message to reach an unengaged site makes the sender its parent in a
   dynamic spanning tree; the site acknowledges its parent only when it
   is passive and all messages it sent have been acknowledged (its
   deficit is zero).  The origin knows the computation has terminated
   when it is passive with zero deficit. *)

type t = {
  self : int;
  origin : int;
  mutable engaged : bool;
  mutable parent : int option;
  mutable active : bool; (* working set non-empty *)
  mutable deficit : int; (* work messages sent but not yet acknowledged *)
  mutable acks_sent : int; (* instrumentation *)
}

type tag = unit

type control = Ack

let name = "dijkstra-scholten"

let create ~n_sites ~origin ~self =
  Detector.check_args ~n_sites ~origin ~self;
  {
    self;
    origin;
    engaged = self = origin;
    parent = None;
    active = false;
    deficit = 0;
    acks_sent = 0;
  }

let on_seed t =
  assert (t.self = t.origin);
  t.active <- true

(* Passive with zero deficit: detach from the tree (ack the parent), or —
   at the origin — declare termination. *)
let try_detach t =
  if t.engaged && (not t.active) && t.deficit = 0 then begin
    if t.self = t.origin then ([], true)
    else begin
      match t.parent with
      | None -> ([], false) (* unreachable: engaged non-origin always has a parent *)
      | Some parent ->
        t.engaged <- false;
        t.parent <- None;
        t.acks_sent <- t.acks_sent + 1;
        ([ (parent, Ack) ], false)
    end
  end
  else ([], false)

let on_send_work t ~dst:_ = t.deficit <- t.deficit + 1

let on_recv_work t ~src () =
  t.active <- true;
  if t.engaged then begin
    (* Already in the tree: acknowledge immediately. *)
    t.acks_sent <- t.acks_sent + 1;
    [ (src, Ack) ]
  end
  else begin
    t.engaged <- true;
    t.parent <- Some src;
    []
  end

(* An undeliverable work message never engaged its receiver, so the ack
   it owed will never come: cancel the deficit entry directly.  This
   can complete the detach condition, exactly as the missing ack would
   have. *)
let on_send_failed t ~dst:_ () =
  t.deficit <- t.deficit - 1;
  assert (t.deficit >= 0);
  try_detach t

let on_drain t =
  t.active <- false;
  try_detach t

let on_recv_control t ~src:_ Ack =
  t.deficit <- t.deficit - 1;
  assert (t.deficit >= 0);
  try_detach t

let poll_interval = None

let on_poll _ = []

let pp_control ppf Ack = Fmt.string ppf "ack"

let acks_sent t = t.acks_sent

let deficit t = t.deficit
