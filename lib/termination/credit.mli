(** Exact dyadic credit arithmetic for weighted-message termination
    detection.

    A credit is a finite multiset of atoms worth 2{^-k}; the computation
    starts with the single atom 2{^0} = 1 at the originating site.
    Splitting replaces 2{^-k} by two 2{^-(k+1)} atoms.  Exponents are
    unbounded, so credit can be split indefinitely (no borrowing
    protocol), and the arithmetic is exact: the origin has recovered
    {e all} credit iff its accumulated credit normalizes back to 1. *)

type t

val zero : t
val one : t

val is_zero : t -> bool

val is_one : t -> bool
(** Exactly the full credit — the termination condition. *)

val equal : t -> t -> bool

val add : t -> t -> t
(** Exact sum, normalized (pairs of equal atoms carry upward). *)

val split : t -> t * t
(** [split c] halves the smallest atom of [c], returning
    [(kept, given)] with [add kept given = c].  Raises
    [Invalid_argument] on zero credit. *)

val atoms : t -> int list
(** Sorted atom exponents (each atom is worth 2{^-k}). *)

val of_atoms : int list -> t
(** Build (and normalize) from atom exponents; the wire decoding path.
    Raises [Invalid_argument] on negative exponents. *)

val discard : t -> unit
(** Deliberately destroy credit.  Discarded credit never returns to
    the origin, so the detector can only converge if the origin has
    stopped counting (a cancelled or force-completed query): every
    call site is flagged by hfcheck's credit-linearity rule (R8) and
    must carry an [@hf.allow "credit-linearity -- why"] justification
    naming why this credit is dead. *)

val to_float : t -> float
(** Approximate numeric value; diagnostics only. *)

val max_exponent : t -> int option
(** Deepest split so far — a measure of how finely credit was divided. *)

val pp : Format.formatter -> t -> unit
