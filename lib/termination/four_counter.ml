(* Mattern-style four-counter termination detection (ablation comparison
   point for E11).

   Each site keeps monotone counters of work messages sent and received,
   plus an activity flag.  The origin periodically runs a wave that
   collects (sent, received, active) from every site.  Termination is
   declared when two consecutive waves report no active site and
   identical counter totals, with sent = received.

   Safety sketch: suppose the condition holds yet a work message m is in
   flight when the second wave reads its counters.  m's send was counted
   by neither wave at its receiver, so for S = R to hold in wave 1 some
   receipt in R1 must lack its send in S1 — i.e. a message sent after its
   sender's wave-1 read yet received before its receiver's wave-1 read.
   But then the sender's wave-2 read (later still) counts that send, so
   S2 > S1, contradicting S1 = S2.  Hence no message is in flight, and
   with every site passive the computation has terminated. *)

type report = { sent : int; received : int; active : bool }

type t = {
  self : int;
  origin : int;
  n_sites : int;
  mutable sent : int;
  mutable received : int;
  mutable active : bool;
  (* Origin-only wave state. *)
  mutable wave_id : int;
  mutable pending : (int * report) list; (* reports received for the current wave *)
  mutable previous : (int * int) option; (* totals of the last complete all-passive wave *)
  mutable waves : int; (* instrumentation *)
  mutable control_messages : int;
}

type tag = unit

type control =
  | Probe of int (* wave id *)
  | Report of int * report

let name = "four-counter"

let create ~n_sites ~origin ~self =
  Detector.check_args ~n_sites ~origin ~self;
  {
    self;
    origin;
    n_sites;
    sent = 0;
    received = 0;
    active = false;
    wave_id = 0;
    pending = [];
    previous = None;
    waves = 0;
    control_messages = 0;
  }

let on_seed t =
  assert (t.self = t.origin);
  t.active <- true

let on_send_work t ~dst:_ = t.sent <- t.sent + 1

(* An undeliverable work message will never appear in any receiver's
   counter: uncount the send, or sent = received could never hold
   again. *)
let on_send_failed t ~dst:_ () =
  t.sent <- t.sent - 1;
  ([], false)

let on_recv_work t ~src:_ () =
  t.received <- t.received + 1;
  t.active <- true;
  []

let on_drain t =
  t.active <- false;
  ([], false)

let self_report t = { sent = t.sent; received = t.received; active = t.active }

let on_poll t =
  if t.self <> t.origin then []
  else begin
    t.wave_id <- t.wave_id + 1;
    t.waves <- t.waves + 1;
    if t.n_sites = 1 then begin
      (* Degenerate wave: route the self-report through the control
         channel so completion is still detected in on_recv_control. *)
      t.pending <- [];
      [ (t.self, Report (t.wave_id, self_report t)) ]
    end
    else begin
      (* The origin reports to itself without a message. *)
      t.pending <- [ (t.self, self_report t) ];
      let probes =
        List.filter_map
          (fun site -> if site = t.self then None else Some (site, Probe t.wave_id))
          (List.init t.n_sites Fun.id)
      in
      t.control_messages <- t.control_messages + List.length probes;
      probes
    end
  end

let wave_complete t =
  let totals =
    List.fold_left
      (fun (s, r, a) ((_, report) : int * report) ->
        (s + report.sent, r + report.received, a || report.active))
      (0, 0, false) t.pending
  in
  t.pending <- [];
  let sent_total, received_total, any_active = totals in
  if any_active || sent_total <> received_total then begin
    t.previous <- None;
    false
  end
  else begin
    match t.previous with
    | Some (prev_sent, prev_received)
      when prev_sent = sent_total && prev_received = received_total -> true
    | Some _ | None ->
      t.previous <- Some (sent_total, received_total);
      false
  end

let on_recv_control t ~src control =
  match control with
  | Probe wave ->
    t.control_messages <- t.control_messages + 1;
    ([ (src, Report (wave, self_report t)) ], false)
  | Report (wave, report) ->
    assert (t.self = t.origin);
    if wave <> t.wave_id then ([], false) (* stale wave; ignore *)
    else begin
      t.pending <- (src, report) :: t.pending;
      if List.length t.pending = t.n_sites then ([], wave_complete t) else ([], false)
    end

(* Must comfortably exceed a control-message round trip (~50 ms under
   the paper cost model), or reports arrive stale and every wave
   aborts. *)
let poll_interval = Some 0.25

let waves t = t.waves

let control_messages t = t.control_messages

let pp_control ppf = function
  | Probe wave -> Fmt.pf ppf "probe(%d)" wave
  | Report (wave, { sent; received; active }) ->
    Fmt.pf ppf "report(%d: s=%d r=%d %s)" wave sent received (if active then "active" else "passive")
