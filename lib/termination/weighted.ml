(* The weighted-message termination algorithm used by the paper's
   prototype (its references [9, 13]; also known as credit-recovery).

   The origin starts with credit 1.  Every work message carries a piece
   of the sender's credit; a site holds credit whenever its working set
   is non-empty.  When a site drains, it returns all held credit to the
   origin in a single control message (in the real protocol this rides
   on the result message, so detection adds no extra messages on the
   common path).  The origin has detected termination exactly when its
   recovered credit normalizes back to 1.

   Credits are exact dyadic multisets (see [Credit]); splitting is
   unbounded so no borrowing protocol is needed. *)

type t = {
  self : int;
  origin : int;
  mutable held : Credit.t;
  mutable recovered : Credit.t; (* meaningful at the origin only *)
  mutable splits : int; (* instrumentation *)
  mutable returns : int;
  mutable deepest_split : int;
      (* largest atom exponent ever given away: how finely the credit
         was diced by the query's fan-out *)
}

type tag = Credit.t

type control = Return of Credit.t

let name = "weighted"

let create ~n_sites ~origin ~self =
  Detector.check_args ~n_sites ~origin ~self;
  {
    self;
    origin;
    held = Credit.zero;
    recovered = Credit.zero;
    splits = 0;
    returns = 0;
    deepest_split = 0;
  }

let on_seed t =
  assert (t.self = t.origin);
  t.held <- Credit.add t.held Credit.one

let on_send_work t ~dst:_ =
  let keep, give = Credit.split t.held in
  t.splits <- t.splits + 1;
  (match Credit.max_exponent give with
   | Some k when k > t.deepest_split -> t.deepest_split <- k
   | _ -> ());
  t.held <- keep;
  give

let on_recv_work t ~src:_ credit =
  t.held <- Credit.add t.held credit;
  []

let terminated t = t.self = t.origin && Credit.is_one t.recovered

(* An undeliverable work message: its credit share was split off but
   will never be held (the receiver provably never processed the
   message), so recover it directly — at the origin into [recovered],
   elsewhere as an ordinary return control.  The unit invariant is
   preserved and the origin still converges to exactly 1. *)
let on_send_failed t ~dst:_ credit =
  if Credit.is_zero credit then ([], terminated t)
  else if t.self = t.origin then begin
    t.recovered <- Credit.add t.recovered credit;
    ([], terminated t)
  end
  else begin
    t.returns <- t.returns + 1;
    ([ (t.origin, Return credit) ], false)
  end

let on_drain t =
  if Credit.is_zero t.held then ([], terminated t)
  else begin
    let returned = t.held in
    t.held <- Credit.zero;
    t.returns <- t.returns + 1;
    if t.self = t.origin then begin
      t.recovered <- Credit.add t.recovered returned;
      ([], terminated t)
    end
    else ([ (t.origin, Return returned) ], false)
  end

let on_recv_control t ~src:_ (Return credit) =
  assert (t.self = t.origin);
  t.recovered <- Credit.add t.recovered credit;
  ([], terminated t)

let poll_interval = None

let on_poll _ = []

let pp_control ppf (Return credit) = Fmt.pf ppf "return(%a)" Credit.pp credit

(* Instrumentation for the ablation bench. *)
let held t = t.held

let recovered t = t.recovered

let splits t = t.splits

let return_messages t = t.returns

let deepest_split t = t.deepest_split

let register ?(prefix = "hf.termination") t registry =
  let c name read = Hf_obs.Registry.register_counter registry (prefix ^ "." ^ name) read in
  c "credit_splits" (fun () -> t.splits);
  c "credit_returns" (fun () -> t.returns);
  c "deepest_split" (fun () -> t.deepest_split)
