(* Common interface for distributed-termination detectors.

   A query terminates when every site's working set is empty and no
   dereference message is in flight (Section 4 of the paper — an
   instance of the Distributed Termination Problem).  Detectors plug
   into the cluster through this interface:

   - every work (dereference) message carries a detector [tag];
   - detectors may exchange standalone [control] messages;
   - the harness notifies the detector when a site seeds work, sends or
     receives a work message, or drains its working set;
   - wave-based detectors may ask to be polled periodically at the
     originating site.

   Only the origin's detector instance ever reports termination. *)

module type S = sig
  val name : string

  type t
  type tag
  type control

  val create : n_sites:int -> origin:int -> self:int -> t
  (** Per-site instance. Raises [Invalid_argument] on a bad site
      count or identifiers out of range. *)

  val on_seed : t -> unit
  (** The origin put the initial work items into its own working set. *)

  val on_send_work : t -> dst:int -> tag
  (** About to send a work message; returns the tag to attach.  A work
      message may carry a whole batch of items for [dst]: the tag (e.g.
      one credit split) covers the batch, not each item. *)

  val on_recv_work : t -> src:int -> tag -> (int * control) list
  (** A work message arrived; may emit immediate control messages
      (e.g. Dijkstra–Scholten acknowledgements).  Called once per
      message even when it batches several work items. *)

  val on_send_failed : t -> dst:int -> tag -> (int * control) list * bool
  (** A work message tagged [tag] for [dst] was reported undeliverable
      (the reliability layer exhausted its retries): whatever the tag
      pledged — a credit share, a deficit increment, a send count —
      must be unwound as if the message had never been sent, or the
      query could never terminate.  Called at most once per tag, and
      only for tags whose message the receiver provably never
      processed.  Same result convention as [on_drain]. *)

  val on_drain : t -> (int * control) list * bool
  (** The local working set just became empty.  Returns control
      messages to send and, at the origin, whether termination is now
      known. *)

  val on_recv_control : t -> src:int -> control -> (int * control) list * bool
  (** A control message arrived; same result convention as
      [on_drain]. *)

  val poll_interval : float option
  (** If set, the harness calls [on_poll] at the origin this often
      (simulated seconds) while the query is open. *)

  val on_poll : t -> (int * control) list

  val pp_control : Format.formatter -> control -> unit
end

let check_args ~n_sites ~origin ~self =
  if n_sites <= 0 then invalid_arg "Detector.create: n_sites must be positive";
  if origin < 0 || origin >= n_sites then invalid_arg "Detector.create: origin out of range";
  if self < 0 || self >= n_sites then invalid_arg "Detector.create: self out of range"
